//! Separable n-dimensional block transforms.
//!
//! Applies a 1-D orthonormal basis along every axis of a block — the
//! Einstein-summation contraction of the paper's §VI-A:
//! `C[γδ…] = B[αβ…]·H1[αγ]·H2[βδ]·…` — in the precision `P` the codec was
//! configured with, so low-precision settings accumulate genuine
//! low-precision rounding.

use crate::{Matrix, TransformKind};
use blazr_precision::Real;

/// A reusable separable transform for one block shape.
///
/// Construction builds (and rounds into `P`) one basis matrix per axis and
/// compiles each into a pair of [`AxisKernel`] plans — output-major weight
/// layouts plus nonzero-index lists for sparse bases — so the per-block
/// hot path is pure slice arithmetic with no index math or weight-zero
/// branches. [`BlockTransform::forward`] and [`BlockTransform::inverse`]
/// operate in place on block-length slices using a caller-provided scratch
/// buffer; nothing allocates per block.
///
/// The kernels accumulate each output coefficient over source index `from`
/// in ascending order, starting from zero and skipping exactly the weights
/// equal to zero — the same floating-point operation sequence as the naive
/// triple loop — so results are bit-identical to the reference contraction
/// in any precision `P` and at any thread count.
#[derive(Debug, Clone)]
pub struct BlockTransform<P> {
    shape: Vec<usize>,
    axes: Vec<AxisKernel<P>>,
    block_len: usize,
}

/// Per-axis kernel plan: geometry plus one compiled weight layout per
/// direction.
#[derive(Debug, Clone)]
struct AxisKernel<P> {
    n: usize,
    /// Product of extents before this axis.
    outer: usize,
    /// Product of extents after this axis (1 ⇒ the contiguous last axis).
    inner: usize,
    fwd: DirKernel<P>,
    inv: DirKernel<P>,
}

/// One direction of a 1-D contraction with a precompiled weight layout.
///
/// Both variants start every output at zero and accumulate its terms over
/// the source index `from` in ascending order, adding exactly the nonzero
/// weights — the same floating-point operation sequence as the naive
/// triple loop, so results are bit-identical to it. For sparse bases
/// (Haar, identity) the zero-weight terms are compiled out into CSR-style
/// nonzero lists instead of being branch-skipped per element; `dense`
/// marks matrices with no zero entries at all (DCT, Walsh–Hadamard),
/// which take a list-free path.
#[derive(Debug, Clone)]
struct DirKernel<P> {
    /// Row-major weights; which index is row-contiguous depends on the
    /// variant ([`DirKernel::compile_output_major`] vs
    /// [`DirKernel::compile_source_major`]).
    weights: Vec<P>,
    dense: bool,
    /// CSR layout over `weights`' major index: row `r`'s nonzero minor
    /// indices (ascending) and weights sit at
    /// `nz_idx/nz_w[nz_starts[r]..nz_starts[r + 1]]`.
    nz_starts: Vec<u32>,
    nz_idx: Vec<u32>,
    nz_w: Vec<P>,
}

impl<P: Real> DirKernel<P> {
    /// Compiles weights with major index `r` and minor index `c` mapped
    /// through `w(r, c)`.
    fn compile(n: usize, w: impl Fn(usize, usize) -> P) -> Self {
        let mut weights = Vec::with_capacity(n * n);
        let mut nz_starts = Vec::with_capacity(n + 1);
        let mut nz_idx = Vec::new();
        let mut nz_w = Vec::new();
        nz_starts.push(0u32);
        for r in 0..n {
            for c in 0..n {
                let v = w(r, c);
                weights.push(v);
                // Exactly the reference loop's skip test, so the compiled
                // nonzero set matches the terms the naive kernel adds.
                if v != P::zero() {
                    nz_idx.push(c as u32);
                    nz_w.push(v);
                }
            }
            nz_starts.push(nz_idx.len() as u32);
        }
        let dense = nz_idx.len() == n * n;
        Self {
            weights,
            dense,
            nz_starts,
            nz_idx,
            nz_w,
        }
    }

    /// Output-major layout for interior axes (`inner > 1`):
    /// `weights[to * n + from]`, CSR rows keyed by `to` listing `from`.
    fn compile_output_major(n: usize, w: impl Fn(usize, usize) -> P) -> Self {
        Self::compile(n, w)
    }

    /// Source-major layout for the last axis (`inner == 1`):
    /// `weights[from * n + to]`, CSR rows keyed by `from` listing `to`.
    fn compile_source_major(n: usize, w: impl Fn(usize, usize) -> P) -> Self {
        Self::compile(n, |from, to| w(to, from))
    }

    /// Interior-axis kernel (`inner > 1`), on an output-major compile:
    /// each output row of `inner` lanes is zeroed once and accumulated
    /// from its source rows with `copy`-free row-slice arithmetic, so the
    /// row stays in registers across the `from` loop.
    fn contract_rows(&self, src: &[P], dst: &mut [P], n: usize, outer: usize, inner: usize) {
        for o in 0..outer {
            let base = o * n * inner;
            let panel = &src[base..base + n * inner];
            for to in 0..n {
                let dst_row = &mut dst[base + to * inner..base + (to + 1) * inner];
                dst_row.fill(P::zero());
                if self.dense {
                    let wrow = &self.weights[to * n..(to + 1) * n];
                    for (from, &w) in wrow.iter().enumerate() {
                        let src_row = &panel[from * inner..(from + 1) * inner];
                        for (dv, &sv) in dst_row.iter_mut().zip(src_row) {
                            *dv = *dv + sv * w;
                        }
                    }
                } else {
                    let (lo, hi) = (self.nz_starts[to] as usize, self.nz_starts[to + 1] as usize);
                    for (&from, &w) in self.nz_idx[lo..hi].iter().zip(&self.nz_w[lo..hi]) {
                        let from = from as usize;
                        let src_row = &panel[from * inner..(from + 1) * inner];
                        for (dv, &sv) in dst_row.iter_mut().zip(src_row) {
                            *dv = *dv + sv * w;
                        }
                    }
                }
            }
        }
    }

    /// Last-axis mat-vec kernel (`inner == 1`), on a source-major compile:
    /// the whole `n`-coefficient output vector accumulates at once — one
    /// axpy of a contiguous weight row per source lane — so every output
    /// coefficient advances through the same ascending-`from` sum the
    /// reference computes, in vector-friendly unit-stride steps.
    fn contract_axpy(&self, src: &[P], dst: &mut [P], n: usize, outer: usize) {
        for o in 0..outer {
            let sv = &src[o * n..(o + 1) * n];
            let dv = &mut dst[o * n..(o + 1) * n];
            dv.fill(P::zero());
            if self.dense {
                for (from, &s) in sv.iter().enumerate() {
                    let wrow = &self.weights[from * n..(from + 1) * n];
                    for (d, &w) in dv.iter_mut().zip(wrow) {
                        *d = *d + s * w;
                    }
                }
            } else {
                for (from, &s) in sv.iter().enumerate() {
                    let (lo, hi) = (
                        self.nz_starts[from] as usize,
                        self.nz_starts[from + 1] as usize,
                    );
                    for (&to, &w) in self.nz_idx[lo..hi].iter().zip(&self.nz_w[lo..hi]) {
                        dv[to as usize] = dv[to as usize] + s * w;
                    }
                }
            }
        }
    }
}

impl<P: Real> BlockTransform<P> {
    /// Builds and compiles the per-axis kernel plans for `kind` over
    /// `block_shape`.
    pub fn new(kind: TransformKind, block_shape: &[usize]) -> Self {
        let d = block_shape.len();
        let mut axes = Vec::with_capacity(d);
        for (axis, &n) in block_shape.iter().enumerate() {
            let mat: Matrix<P> = kind.matrix(n);
            let inner: usize = block_shape[axis + 1..].iter().product();
            // Forward contracts data against basis columns
            // (`c_to = Σ_from b_from · H[from][to]`), inverse against rows.
            let (fwd, inv) = if inner == 1 {
                (
                    DirKernel::compile_source_major(n, |to, from| mat.entry(from, to)),
                    DirKernel::compile_source_major(n, |to, from| mat.entry(to, from)),
                )
            } else {
                (
                    DirKernel::compile_output_major(n, |to, from| mat.entry(from, to)),
                    DirKernel::compile_output_major(n, |to, from| mat.entry(to, from)),
                )
            };
            axes.push(AxisKernel {
                n,
                outer: block_shape[..axis].iter().product(),
                inner,
                fwd,
                inv,
            });
        }
        let block_len = block_shape.iter().product();
        Self {
            shape: block_shape.to_vec(),
            axes,
            block_len,
        }
    }

    /// Elements per block.
    pub fn block_len(&self) -> usize {
        self.block_len
    }

    /// The block shape this transform was built for.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Forward transform: data → coefficients, in place.
    ///
    /// `scratch` must be at least `block_len` long.
    pub fn forward(&self, data: &mut [P], scratch: &mut [P]) {
        self.apply(data, scratch, false);
    }

    /// Inverse transform: coefficients → data, in place.
    pub fn inverse(&self, data: &mut [P], scratch: &mut [P]) {
        self.apply(data, scratch, true);
    }

    fn apply(&self, data: &mut [P], scratch: &mut [P], inverse: bool) {
        let d = self.shape.len();
        assert!(data.len() >= self.block_len, "block buffer too small");
        assert!(scratch.len() >= self.block_len, "scratch buffer too small");
        if d == 0 || self.block_len == 0 {
            return;
        }
        let mut in_data = true; // current contents live in `data`
        for ax in &self.axes {
            let (src, dst): (&[P], &mut [P]) = if in_data {
                (&data[..self.block_len], &mut scratch[..self.block_len])
            } else {
                (&scratch[..self.block_len], &mut data[..self.block_len])
            };
            let kernel = if inverse { &ax.inv } else { &ax.fwd };
            if ax.inner == 1 {
                kernel.contract_axpy(src, dst, ax.n, ax.outer);
            } else {
                kernel.contract_rows(src, dst, ax.n, ax.outer, ax.inner);
            }
            in_data = !in_data;
        }
        if !in_data {
            data[..self.block_len].copy_from_slice(&scratch[..self.block_len]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazr_precision::F16;
    use blazr_util::rng::Xoshiro256pp;

    fn random_block(len: usize, seed: u64) -> Vec<f64> {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        (0..len).map(|_| rng.uniform_in(-1.0, 1.0)).collect()
    }

    fn roundtrip_error(kind: TransformKind, shape: &[usize], seed: u64) -> f64 {
        let t = BlockTransform::<f64>::new(kind, shape);
        let orig = random_block(t.block_len(), seed);
        let mut data = orig.clone();
        let mut scratch = vec![0.0; t.block_len()];
        t.forward(&mut data, &mut scratch);
        t.inverse(&mut data, &mut scratch);
        orig.iter()
            .zip(&data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn forward_inverse_identity_dct() {
        for shape in [
            vec![4],
            vec![4, 8],
            vec![4, 4, 4],
            vec![2, 4, 8],
            vec![16, 16],
        ] {
            let e = roundtrip_error(TransformKind::Dct, &shape, 1);
            assert!(e < 1e-12, "shape {shape:?} err {e}");
        }
    }

    #[test]
    fn forward_inverse_identity_haar() {
        for shape in [vec![8], vec![4, 4], vec![2, 8, 4]] {
            let e = roundtrip_error(TransformKind::Haar, &shape, 2);
            assert!(e < 1e-12, "shape {shape:?} err {e}");
        }
    }

    #[test]
    fn identity_transform_is_noop() {
        let t = BlockTransform::<f64>::new(TransformKind::Identity, &[4, 4]);
        let orig = random_block(16, 3);
        let mut data = orig.clone();
        let mut scratch = vec![0.0; 16];
        t.forward(&mut data, &mut scratch);
        assert_eq!(data, orig);
    }

    #[test]
    fn parseval_energy_preservation() {
        // Orthonormality ⇒ Σc² = Σx².
        let t = BlockTransform::<f64>::new(TransformKind::Dct, &[4, 8]);
        let orig = random_block(32, 4);
        let mut data = orig.clone();
        let mut scratch = vec![0.0; 32];
        t.forward(&mut data, &mut scratch);
        let e_in: f64 = orig.iter().map(|x| x * x).sum();
        let e_out: f64 = data.iter().map(|x| x * x).sum();
        assert!((e_in - e_out).abs() < 1e-12 * e_in.max(1.0));
    }

    #[test]
    fn dot_product_preservation() {
        // The property §IV-A's operations rely on.
        let t = BlockTransform::<f64>::new(TransformKind::Dct, &[4, 4, 4]);
        let a = random_block(64, 5);
        let b = random_block(64, 6);
        let mut ca = a.clone();
        let mut cb = b.clone();
        let mut scratch = vec![0.0; 64];
        t.forward(&mut ca, &mut scratch);
        t.forward(&mut cb, &mut scratch);
        let dot_raw: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let dot_coef: f64 = ca.iter().zip(&cb).map(|(x, y)| x * y).sum();
        assert!((dot_raw - dot_coef).abs() < 1e-12);
    }

    #[test]
    fn dc_coefficient_is_scaled_block_mean() {
        // §IV-A: "the first coefficient in each block is the mean of the
        // uncompressed block scaled by c = Π√i".
        for kind in [TransformKind::Dct, TransformKind::Haar] {
            let shape = [4, 8];
            let t = BlockTransform::<f64>::new(kind, &shape);
            let block = random_block(32, 7);
            let mut data = block.clone();
            let mut scratch = vec![0.0; 32];
            t.forward(&mut data, &mut scratch);
            let mean: f64 = block.iter().sum::<f64>() / 32.0;
            let c = (4f64).sqrt() * (8f64).sqrt();
            assert!(
                (data[0] - mean * c).abs() < 1e-12,
                "{kind:?}: dc={} expected={}",
                data[0],
                mean * c
            );
        }
    }

    #[test]
    fn low_precision_roundtrip_has_bounded_error() {
        let t = BlockTransform::<F16>::new(TransformKind::Dct, &[8, 8]);
        let orig = random_block(64, 8);
        let mut data: Vec<F16> = orig.iter().map(|&x| F16::from_f64(x)).collect();
        let mut scratch = vec![F16::ZERO; 64];
        t.forward(&mut data, &mut scratch);
        t.inverse(&mut data, &mut scratch);
        let max_err = orig
            .iter()
            .zip(&data)
            .map(|(a, b)| (a - b.to_f64()).abs())
            .fold(0.0, f64::max);
        // f16 has ~1e-3 ulp at 1.0 and we do ~16 accumulations per element.
        assert!(max_err < 0.05, "err {max_err}");
        assert!(max_err > 1e-8, "f16 arithmetic should actually lose bits");
    }

    #[test]
    fn constant_block_concentrates_into_dc() {
        let t = BlockTransform::<f64>::new(TransformKind::Dct, &[4, 4]);
        let mut data = vec![2.5f64; 16];
        let mut scratch = vec![0.0; 16];
        t.forward(&mut data, &mut scratch);
        assert!((data[0] - 2.5 * 4.0).abs() < 1e-12); // mean·√16
        for &c in &data[1..] {
            assert!(c.abs() < 1e-12);
        }
    }

    #[test]
    fn scalar_block_is_untouched() {
        let t = BlockTransform::<f64>::new(TransformKind::Dct, &[]);
        let mut data = vec![3.0];
        let mut scratch = vec![0.0];
        t.forward(&mut data, &mut scratch);
        assert_eq!(data[0], 3.0);
    }
}
