//! Separable n-dimensional block transforms.
//!
//! Applies a 1-D orthonormal basis along every axis of a block — the
//! Einstein-summation contraction of the paper's §VI-A:
//! `C[γδ…] = B[αβ…]·H1[αγ]·H2[βδ]·…` — in the precision `P` the codec was
//! configured with, so low-precision settings accumulate genuine
//! low-precision rounding.

use crate::{Matrix, TransformKind};
use blazr_precision::Real;

/// A reusable separable transform for one block shape.
///
/// Construction builds (and rounds into `P`) one basis matrix per axis.
/// [`BlockTransform::forward`] and [`BlockTransform::inverse`] then operate
/// in place on block-length slices using a caller-provided scratch buffer,
/// so the per-block hot path allocates nothing.
#[derive(Debug, Clone)]
pub struct BlockTransform<P> {
    shape: Vec<usize>,
    mats: Vec<Matrix<P>>,
    block_len: usize,
}

impl<P: Real> BlockTransform<P> {
    /// Builds the per-axis matrices for `kind` over `block_shape`.
    pub fn new(kind: TransformKind, block_shape: &[usize]) -> Self {
        let mats = block_shape.iter().map(|&n| kind.matrix::<P>(n)).collect();
        let block_len = block_shape.iter().product();
        Self {
            shape: block_shape.to_vec(),
            mats,
            block_len,
        }
    }

    /// Elements per block.
    pub fn block_len(&self) -> usize {
        self.block_len
    }

    /// The block shape this transform was built for.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Forward transform: data → coefficients, in place.
    ///
    /// `scratch` must be at least `block_len` long.
    pub fn forward(&self, data: &mut [P], scratch: &mut [P]) {
        self.apply(data, scratch, false);
    }

    /// Inverse transform: coefficients → data, in place.
    pub fn inverse(&self, data: &mut [P], scratch: &mut [P]) {
        self.apply(data, scratch, true);
    }

    fn apply(&self, data: &mut [P], scratch: &mut [P], inverse: bool) {
        let d = self.shape.len();
        assert!(data.len() >= self.block_len, "block buffer too small");
        assert!(scratch.len() >= self.block_len, "scratch buffer too small");
        if d == 0 || self.block_len == 0 {
            return;
        }
        let mut in_data = true; // current contents live in `data`
        for axis in 0..d {
            let (src, dst): (&[P], &mut [P]) = if in_data {
                (&data[..self.block_len], &mut scratch[..self.block_len])
            } else {
                (&scratch[..self.block_len], &mut data[..self.block_len])
            };
            contract_axis(src, dst, &self.shape, axis, &self.mats[axis], inverse);
            in_data = !in_data;
        }
        if !in_data {
            data[..self.block_len].copy_from_slice(&scratch[..self.block_len]);
        }
    }
}

/// Contracts one axis of `src` against the basis matrix, writing `dst`.
///
/// Forward: `dst[…,k,…] = Σ_n src[…,n,…]·H[n][k]` (basis columns).
/// Inverse: `dst[…,n,…] = Σ_k src[…,k,…]·H[n][k]` (basis rows).
fn contract_axis<P: Real>(
    src: &[P],
    dst: &mut [P],
    shape: &[usize],
    axis: usize,
    mat: &Matrix<P>,
    inverse: bool,
) {
    let n = shape[axis];
    let outer: usize = shape[..axis].iter().product();
    let inner: usize = shape[axis + 1..].iter().product();
    for v in dst.iter_mut() {
        *v = P::zero();
    }
    for o in 0..outer {
        let base = o * n * inner;
        for from in 0..n {
            let src_row = &src[base + from * inner..base + (from + 1) * inner];
            for to in 0..n {
                let w = if inverse {
                    mat.entry(to, from)
                } else {
                    mat.entry(from, to)
                };
                if w == P::zero() {
                    continue; // sparse bases (Haar, identity) skip most work
                }
                let dst_row = &mut dst[base + to * inner..base + (to + 1) * inner];
                for (dv, &sv) in dst_row.iter_mut().zip(src_row) {
                    *dv = *dv + sv * w;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazr_precision::F16;
    use blazr_util::rng::Xoshiro256pp;

    fn random_block(len: usize, seed: u64) -> Vec<f64> {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        (0..len).map(|_| rng.uniform_in(-1.0, 1.0)).collect()
    }

    fn roundtrip_error(kind: TransformKind, shape: &[usize], seed: u64) -> f64 {
        let t = BlockTransform::<f64>::new(kind, shape);
        let orig = random_block(t.block_len(), seed);
        let mut data = orig.clone();
        let mut scratch = vec![0.0; t.block_len()];
        t.forward(&mut data, &mut scratch);
        t.inverse(&mut data, &mut scratch);
        orig.iter()
            .zip(&data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn forward_inverse_identity_dct() {
        for shape in [
            vec![4],
            vec![4, 8],
            vec![4, 4, 4],
            vec![2, 4, 8],
            vec![16, 16],
        ] {
            let e = roundtrip_error(TransformKind::Dct, &shape, 1);
            assert!(e < 1e-12, "shape {shape:?} err {e}");
        }
    }

    #[test]
    fn forward_inverse_identity_haar() {
        for shape in [vec![8], vec![4, 4], vec![2, 8, 4]] {
            let e = roundtrip_error(TransformKind::Haar, &shape, 2);
            assert!(e < 1e-12, "shape {shape:?} err {e}");
        }
    }

    #[test]
    fn identity_transform_is_noop() {
        let t = BlockTransform::<f64>::new(TransformKind::Identity, &[4, 4]);
        let orig = random_block(16, 3);
        let mut data = orig.clone();
        let mut scratch = vec![0.0; 16];
        t.forward(&mut data, &mut scratch);
        assert_eq!(data, orig);
    }

    #[test]
    fn parseval_energy_preservation() {
        // Orthonormality ⇒ Σc² = Σx².
        let t = BlockTransform::<f64>::new(TransformKind::Dct, &[4, 8]);
        let orig = random_block(32, 4);
        let mut data = orig.clone();
        let mut scratch = vec![0.0; 32];
        t.forward(&mut data, &mut scratch);
        let e_in: f64 = orig.iter().map(|x| x * x).sum();
        let e_out: f64 = data.iter().map(|x| x * x).sum();
        assert!((e_in - e_out).abs() < 1e-12 * e_in.max(1.0));
    }

    #[test]
    fn dot_product_preservation() {
        // The property §IV-A's operations rely on.
        let t = BlockTransform::<f64>::new(TransformKind::Dct, &[4, 4, 4]);
        let a = random_block(64, 5);
        let b = random_block(64, 6);
        let mut ca = a.clone();
        let mut cb = b.clone();
        let mut scratch = vec![0.0; 64];
        t.forward(&mut ca, &mut scratch);
        t.forward(&mut cb, &mut scratch);
        let dot_raw: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let dot_coef: f64 = ca.iter().zip(&cb).map(|(x, y)| x * y).sum();
        assert!((dot_raw - dot_coef).abs() < 1e-12);
    }

    #[test]
    fn dc_coefficient_is_scaled_block_mean() {
        // §IV-A: "the first coefficient in each block is the mean of the
        // uncompressed block scaled by c = Π√i".
        for kind in [TransformKind::Dct, TransformKind::Haar] {
            let shape = [4, 8];
            let t = BlockTransform::<f64>::new(kind, &shape);
            let block = random_block(32, 7);
            let mut data = block.clone();
            let mut scratch = vec![0.0; 32];
            t.forward(&mut data, &mut scratch);
            let mean: f64 = block.iter().sum::<f64>() / 32.0;
            let c = (4f64).sqrt() * (8f64).sqrt();
            assert!(
                (data[0] - mean * c).abs() < 1e-12,
                "{kind:?}: dc={} expected={}",
                data[0],
                mean * c
            );
        }
    }

    #[test]
    fn low_precision_roundtrip_has_bounded_error() {
        let t = BlockTransform::<F16>::new(TransformKind::Dct, &[8, 8]);
        let orig = random_block(64, 8);
        let mut data: Vec<F16> = orig.iter().map(|&x| F16::from_f64(x)).collect();
        let mut scratch = vec![F16::ZERO; 64];
        t.forward(&mut data, &mut scratch);
        t.inverse(&mut data, &mut scratch);
        let max_err = orig
            .iter()
            .zip(&data)
            .map(|(a, b)| (a - b.to_f64()).abs())
            .fold(0.0, f64::max);
        // f16 has ~1e-3 ulp at 1.0 and we do ~16 accumulations per element.
        assert!(max_err < 0.05, "err {max_err}");
        assert!(max_err > 1e-8, "f16 arithmetic should actually lose bits");
    }

    #[test]
    fn constant_block_concentrates_into_dc() {
        let t = BlockTransform::<f64>::new(TransformKind::Dct, &[4, 4]);
        let mut data = vec![2.5f64; 16];
        let mut scratch = vec![0.0; 16];
        t.forward(&mut data, &mut scratch);
        assert!((data[0] - 2.5 * 4.0).abs() < 1e-12); // mean·√16
        for &c in &data[1..] {
            assert!(c.abs() < 1e-12);
        }
    }

    #[test]
    fn scalar_block_is_untouched() {
        let t = BlockTransform::<f64>::new(TransformKind::Dct, &[]);
        let mut data = vec![3.0];
        let mut scratch = vec![0.0];
        t.forward(&mut data, &mut scratch);
        assert_eq!(data[0], 3.0);
    }
}
