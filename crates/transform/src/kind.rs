//! The transform families PyBlaz supports.

use crate::Matrix;
use blazr_precision::Real;

/// Which orthonormal basis the codec uses for the transform step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransformKind {
    /// Orthonormal DCT-II (the paper's default).
    Dct,
    /// Orthonormal Haar wavelet (power-of-two sizes).
    Haar,
    /// Orthonormal Walsh–Hadamard (power-of-two sizes): a ±1/√n basis,
    /// cheaper than the DCT (no trigonometry) with the same DC property.
    WalshHadamard,
    /// Identity (no decorrelation) — useful for testing and ablations.
    /// Note: its first basis vector is *not* constant, so the mean /
    /// scalar-addition operations (which read the DC coefficient) are not
    /// available under this transform.
    Identity,
}

impl TransformKind {
    /// All variants, in serialization-tag order.
    pub const ALL: [TransformKind; 4] = [
        TransformKind::Dct,
        TransformKind::Haar,
        TransformKind::Identity,
        TransformKind::WalshHadamard,
    ];

    /// True if the first basis vector is the constant `1/√n` vector, which
    /// Algorithm 7 (mean) and Algorithm 4 (scalar addition) require.
    pub fn has_dc_basis(self) -> bool {
        !matches!(self, TransformKind::Identity)
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            TransformKind::Dct => "dct",
            TransformKind::Haar => "haar",
            TransformKind::Identity => "identity",
            TransformKind::WalshHadamard => "walsh-hadamard",
        }
    }

    /// Serialization tag.
    pub fn tag(self) -> u8 {
        match self {
            TransformKind::Dct => 0,
            TransformKind::Haar => 1,
            TransformKind::Identity => 2,
            TransformKind::WalshHadamard => 3,
        }
    }

    /// Inverse of [`TransformKind::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(TransformKind::Dct),
            1 => Some(TransformKind::Haar),
            2 => Some(TransformKind::Identity),
            3 => Some(TransformKind::WalshHadamard),
            _ => None,
        }
    }

    /// The n×n basis matrix in `f64`: `H[n][k]` is basis vector `k`
    /// evaluated at element `n` (columns are basis vectors).
    pub fn matrix_f64(self, n: usize) -> Vec<f64> {
        assert!(n > 0, "transform size must be positive");
        match self {
            TransformKind::Dct => dct_matrix(n),
            TransformKind::Haar => haar_matrix(n),
            TransformKind::WalshHadamard => hadamard_matrix(n),
            TransformKind::Identity => {
                let mut m = vec![0.0; n * n];
                for i in 0..n {
                    m[i * n + i] = 1.0;
                }
                m
            }
        }
    }

    /// The basis matrix rounded into precision `P`.
    pub fn matrix<P: Real>(self, n: usize) -> Matrix<P> {
        Matrix::from_f64_rows(n, &self.matrix_f64(n))
    }
}

/// Standard orthonormal DCT-II basis: column `k` is
/// `√((1+[k>0])/n)·cos(π(2n+1)k/(2n))` evaluated at element row `n`.
/// Column 0 is the constant `1/√n` (the DC basis).
fn dct_matrix(n: usize) -> Vec<f64> {
    let mut m = vec![0.0; n * n];
    let nf = n as f64;
    for row in 0..n {
        for col in 0..n {
            let scale = if col == 0 {
                (1.0 / nf).sqrt()
            } else {
                (2.0 / nf).sqrt()
            };
            let angle = std::f64::consts::PI * (2.0 * row as f64 + 1.0) * col as f64 / (2.0 * nf);
            m[row * n + col] = scale * angle.cos();
        }
    }
    m
}

/// Orthonormal Haar basis for power-of-two `n`, built by the standard
/// doubling recursion and column normalization. Column 0 is the constant
/// `1/√n` vector.
fn haar_matrix(n: usize) -> Vec<f64> {
    assert!(
        n.is_power_of_two(),
        "Haar transform requires power-of-two size, got {n}"
    );
    // Start from H(1) = [1]; repeatedly double:
    //   first half of columns:  column c of H(m) with each entry duplicated
    //   second half of columns: ±1 detail functions at the finest scale
    let mut size = 1usize;
    let mut h = vec![1.0f64];
    while size < n {
        let m = size;
        let next = 2 * m;
        let mut h2 = vec![0.0; next * next];
        for c in 0..m {
            for r in 0..m {
                let v = h[r * m + c];
                h2[(2 * r) * next + c] = v;
                h2[(2 * r + 1) * next + c] = v;
            }
        }
        for i in 0..m {
            h2[(2 * i) * next + (m + i)] = 1.0;
            h2[(2 * i + 1) * next + (m + i)] = -1.0;
        }
        h = h2;
        size = next;
    }
    // Normalize each column to unit length.
    for c in 0..n {
        let norm: f64 = (0..n)
            .map(|r| h[r * n + c] * h[r * n + c])
            .sum::<f64>()
            .sqrt();
        for r in 0..n {
            h[r * n + c] /= norm;
        }
    }
    h
}

/// Orthonormal Walsh–Hadamard basis for power-of-two `n`, built by the
/// Sylvester doubling `H(2n) = 1/√2·[H H; H −H]`. Entry (r, c) is
/// `(−1)^popcount(r & c) / √n`; column 0 is the constant `1/√n`.
fn hadamard_matrix(n: usize) -> Vec<f64> {
    assert!(
        n.is_power_of_two(),
        "Walsh–Hadamard transform requires power-of-two size, got {n}"
    );
    let scale = 1.0 / (n as f64).sqrt();
    let mut m = vec![0.0; n * n];
    for r in 0..n {
        for c in 0..n {
            let sign = if (r & c).count_ones() % 2 == 0 {
                1.0
            } else {
                -1.0
            };
            m[r * n + c] = sign * scale;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dct_matches_naive_formula() {
        let n = 8;
        let m = TransformKind::Dct.matrix_f64(n);
        for row in 0..n {
            for col in 0..n {
                let scale: f64 = if col == 0 {
                    (1.0 / n as f64).sqrt()
                } else {
                    (2.0 / n as f64).sqrt()
                };
                let v = scale
                    * (std::f64::consts::PI * (2 * row + 1) as f64 * col as f64 / (2.0 * n as f64))
                        .cos();
                assert!((m[row * n + col] - v).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn dct_is_orthonormal() {
        for n in [1, 2, 3, 4, 5, 8, 16, 32] {
            let m: Matrix<f64> = TransformKind::Dct.matrix(n);
            assert!(
                m.orthonormality_defect() < 1e-12,
                "n={n} defect {}",
                m.orthonormality_defect()
            );
        }
    }

    #[test]
    fn haar_is_orthonormal() {
        for n in [1, 2, 4, 8, 16, 32, 64] {
            let m: Matrix<f64> = TransformKind::Haar.matrix(n);
            assert!(
                m.orthonormality_defect() < 1e-12,
                "n={n} defect {}",
                m.orthonormality_defect()
            );
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn haar_rejects_non_power_of_two() {
        let _ = TransformKind::Haar.matrix_f64(6);
    }

    #[test]
    fn dc_basis_is_constant_for_dct_and_haar() {
        for kind in [TransformKind::Dct, TransformKind::Haar] {
            let n = 8;
            let m = kind.matrix_f64(n);
            let expect = (1.0 / n as f64).sqrt();
            for row in 0..n {
                assert!(
                    (m[row * n] - expect).abs() < 1e-12,
                    "{kind:?} row {row}: {}",
                    m[row * n]
                );
            }
            assert!(kind.has_dc_basis());
        }
        assert!(!TransformKind::Identity.has_dc_basis());
    }

    #[test]
    fn tags_roundtrip() {
        for k in TransformKind::ALL {
            assert_eq!(TransformKind::from_tag(k.tag()), Some(k));
        }
        assert_eq!(TransformKind::from_tag(9), None);
    }

    #[test]
    fn hadamard_is_orthonormal_with_dc_basis() {
        for n in [1, 2, 4, 8, 16, 32] {
            let m: Matrix<f64> = TransformKind::WalshHadamard.matrix(n);
            assert!(m.orthonormality_defect() < 1e-12, "n={n}");
            let expect = (1.0 / n as f64).sqrt();
            for row in 0..n {
                assert!((m.entry(row, 0) - expect).abs() < 1e-15);
            }
        }
        assert!(TransformKind::WalshHadamard.has_dc_basis());
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn hadamard_rejects_non_power_of_two() {
        let _ = TransformKind::WalshHadamard.matrix_f64(12);
    }

    #[test]
    fn identity_matrix_is_identity() {
        let m = TransformKind::Identity.matrix_f64(3);
        assert_eq!(m, vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0]);
    }
}
