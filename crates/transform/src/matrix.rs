//! Small dense square matrices holding transform bases.

use blazr_precision::Real;

/// A square matrix of [`Real`] entries, row-major.
///
/// `entry(n, k)` is the value of basis vector `k` at element `n`; the
/// forward transform contracts data against columns
/// (`c_k = Σ_n b_n · H[n][k]`) and the inverse against rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<P> {
    n: usize,
    data: Vec<P>,
}

impl<P: Real> Matrix<P> {
    /// Builds a matrix from a row-major `f64` buffer, rounding entries into
    /// `P` (the paper builds its transform matrices in the chosen dtype).
    pub fn from_f64_rows(n: usize, rows: &[f64]) -> Self {
        assert_eq!(rows.len(), n * n, "matrix data must be n×n");
        Self {
            n,
            data: rows.iter().map(|&x| P::from_f64(x)).collect(),
        }
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut data = vec![P::zero(); n * n];
        for i in 0..n {
            data[i * n + i] = P::one();
        }
        Self { n, data }
    }

    /// Matrix dimension.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Entry at `(row, col)`.
    #[inline]
    pub fn entry(&self, row: usize, col: usize) -> P {
        self.data[row * self.n + col]
    }

    /// Borrow of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[P] {
        &self.data[r * self.n..(r + 1) * self.n]
    }

    /// Transpose.
    pub fn transpose(&self) -> Self {
        let n = self.n;
        let mut data = vec![P::zero(); n * n];
        for r in 0..n {
            for c in 0..n {
                data[c * n + r] = self.data[r * n + c];
            }
        }
        Self { n, data }
    }

    /// `self · other` (used only by tests; block application uses the
    /// axis-contraction kernels in [`crate::BlockTransform`]).
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(self.n, other.n);
        let n = self.n;
        let mut data = vec![P::zero(); n * n];
        for r in 0..n {
            for c in 0..n {
                let mut acc = P::zero();
                for k in 0..n {
                    acc = acc + self.entry(r, k) * other.entry(k, c);
                }
                data[r * n + c] = acc;
            }
        }
        Self { n, data }
    }

    /// Maximum deviation of `HᵀH` from the identity, in `f64`.
    ///
    /// Small values certify orthonormality of the columns.
    pub fn orthonormality_defect(&self) -> f64 {
        let n = self.n;
        let mut worst = 0.0f64;
        for a in 0..n {
            for b in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += self.entry(k, a).to_f64() * self.entry(k, b).to_f64();
                }
                let target = if a == b { 1.0 } else { 0.0 };
                worst = worst.max((acc - target).abs());
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_properties() {
        let m = Matrix::<f64>::identity(4);
        assert_eq!(m.size(), 4);
        assert_eq!(m.entry(2, 2), 1.0);
        assert_eq!(m.entry(2, 1), 0.0);
        assert_eq!(m.orthonormality_defect(), 0.0);
    }

    #[test]
    fn transpose_is_involution() {
        let m = Matrix::<f64>::from_f64_rows(2, &[1.0, 2.0, 3.0, 4.0]);
        let t = m.transpose();
        assert_eq!(t.entry(0, 1), 3.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_against_hand_computed() {
        let a = Matrix::<f64>::from_f64_rows(2, &[1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::<f64>::from_f64_rows(2, &[5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.entry(0, 0), 19.0);
        assert_eq!(c.entry(0, 1), 22.0);
        assert_eq!(c.entry(1, 0), 43.0);
        assert_eq!(c.entry(1, 1), 50.0);
    }

    #[test]
    fn low_precision_entries_round() {
        use blazr_precision::F16;
        let m = Matrix::<F16>::from_f64_rows(1, &[std::f64::consts::FRAC_1_SQRT_2]);
        let e = m.entry(0, 0).to_f64();
        assert!((e - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3);
    }
}
