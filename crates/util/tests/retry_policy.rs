//! Property coverage for [`blazr_util::retry::RetryPolicy`]: attempts
//! are bounded by the budget, the backoff schedule is monotone
//! non-decreasing, and permanent errors (the checksum-failure /
//! corrupt-footer class) are never retried.

use blazr_util::retry::RetryPolicy;
use proptest::prelude::*;
use std::io;
use std::time::Duration;

const TRANSIENT: [io::ErrorKind; 3] = [
    io::ErrorKind::Interrupted,
    io::ErrorKind::WouldBlock,
    io::ErrorKind::TimedOut,
];

/// The error kinds real damage surfaces as: a payload checksum mismatch
/// or corrupt footer is reported as `InvalidData`/`Other`, a truncated
/// file as `UnexpectedEof`, a missing store as `NotFound`.
const PERMANENT: [io::ErrorKind; 5] = [
    io::ErrorKind::InvalidData,
    io::ErrorKind::UnexpectedEof,
    io::ErrorKind::NotFound,
    io::ErrorKind::PermissionDenied,
    io::ErrorKind::Other,
];

/// Runs `policy` against a scripted error sequence (`None` = success),
/// recording every attempt and every backoff sleep.
fn drive(
    policy: &RetryPolicy,
    script: &[Option<io::ErrorKind>],
) -> (Vec<io::ErrorKind>, Vec<Duration>, bool, u32, bool) {
    let mut attempts: Vec<io::ErrorKind> = Vec::new();
    let mut sleeps: Vec<Duration> = Vec::new();
    let mut i = 0usize;
    let out = policy.run_with(
        || {
            let step = script.get(i).copied().flatten();
            i += 1;
            match step {
                None => Ok(()),
                Some(kind) => {
                    attempts.push(kind);
                    Err(io::Error::new(kind, "scripted"))
                }
            }
        },
        |d| sleeps.push(d),
    );
    (
        attempts,
        sleeps,
        out.result.is_ok(),
        out.retries,
        out.gave_up,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// However the transient faults fall, the operation runs at most
    /// `attempts.max(1)` times and sleeps exactly once per retry.
    #[test]
    fn attempts_are_bounded(
        budget in 0u32..8,
        fail_count in 0usize..12,
        kind_ix in 0usize..3,
    ) {
        let policy = RetryPolicy { attempts: budget, base_backoff: Duration::from_nanos(7) };
        let kind = TRANSIENT[kind_ix];
        let mut script: Vec<Option<io::ErrorKind>> = vec![Some(kind); fail_count];
        script.push(None); // succeeds if the budget reaches it
        let (attempts, sleeps, ok, retries, gave_up) = drive(&policy, &script);

        let cap = budget.max(1) as usize;
        let total_runs = attempts.len() + usize::from(ok);
        prop_assert!(total_runs <= cap, "ran {total_runs} times, budget {cap}");
        prop_assert_eq!(sleeps.len() as u32, retries);
        if fail_count < cap {
            prop_assert!(ok, "enough budget to reach the scripted success");
            prop_assert!(!gave_up);
            prop_assert_eq!(retries as usize, fail_count);
        } else {
            prop_assert!(!ok);
            prop_assert!(gave_up, "exhausting the budget must report a giveup");
            prop_assert_eq!(retries as usize, cap - 1);
        }
    }

    /// The backoff schedule never shrinks between consecutive retries.
    #[test]
    fn backoff_is_monotone_non_decreasing(
        budget in 2u32..9,
        base_us in 1u64..500,
    ) {
        let policy = RetryPolicy {
            attempts: budget,
            base_backoff: Duration::from_micros(base_us),
        };
        let script = vec![Some(io::ErrorKind::Interrupted); budget as usize + 2];
        let (_, sleeps, ok, _, gave_up) = drive(&policy, &script);
        prop_assert!(!ok && gave_up);
        prop_assert_eq!(sleeps.len() as u32, budget - 1);
        prop_assert_eq!(sleeps.first().copied(), Some(policy.base_backoff));
        for w in sleeps.windows(2) {
            prop_assert!(w[1] >= w[0], "backoff shrank: {:?} -> {:?}", w[0], w[1]);
        }
        // And the direct schedule accessor agrees.
        for r in 0..budget.saturating_sub(1) {
            prop_assert!(policy.backoff(r + 1) >= policy.backoff(r));
        }
    }

    /// A permanent error fails the very first attempt: no retry, no
    /// sleep, no giveup accounting — even buried after transients.
    #[test]
    fn permanent_errors_are_never_retried(
        budget in 1u32..8,
        lead_transients in 0usize..3,
        kind_ix in 0usize..5,
    ) {
        let policy = RetryPolicy { attempts: budget, base_backoff: Duration::from_nanos(3) };
        let kind = PERMANENT[kind_ix];
        prop_assert!(!RetryPolicy::is_transient(kind));
        let mut script: Vec<Option<io::ErrorKind>> =
            vec![Some(io::ErrorKind::WouldBlock); lead_transients];
        script.push(Some(kind));
        // Anything after the permanent error must be unreachable.
        script.push(None);
        let (attempts, sleeps, ok, retries, gave_up) = drive(&policy, &script);
        prop_assert!(!ok);
        if lead_transients < budget.max(1) as usize {
            // The permanent error was reached: it ended the run at once,
            // and a permanent failure is not a retry giveup.
            prop_assert!(!gave_up);
            prop_assert_eq!(attempts.last().copied(), Some(kind));
            prop_assert_eq!(retries as usize, lead_transients);
            prop_assert_eq!(sleeps.len(), lead_transients);
        } else {
            // The leading transients exhausted the budget first; the
            // permanent error was never even attempted.
            prop_assert!(gave_up);
            prop_assert!(attempts.iter().all(|&k| RetryPolicy::is_transient(k)));
        }
    }
}
