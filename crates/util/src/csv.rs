//! A minimal CSV writer for the figure-regeneration binaries.
//!
//! The benchmark harness emits one CSV per paper figure into `results/`;
//! this module keeps that dependency-free. Values are written with enough
//! precision to round-trip `f64`.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Accumulates rows and writes them to disk.
#[derive(Debug, Default, Clone)]
pub struct CsvWriter {
    buf: String,
    columns: usize,
}

impl CsvWriter {
    /// Creates a writer with a header row.
    pub fn with_header(columns: &[&str]) -> Self {
        let mut w = Self {
            buf: String::new(),
            columns: columns.len(),
        };
        w.push_row_str(columns);
        w
    }

    fn push_field(&mut self, field: &str, first: bool) {
        if !first {
            self.buf.push(',');
        }
        if field.contains([',', '"', '\n']) {
            self.buf.push('"');
            for ch in field.chars() {
                if ch == '"' {
                    self.buf.push('"');
                }
                self.buf.push(ch);
            }
            self.buf.push('"');
        } else {
            self.buf.push_str(field);
        }
    }

    /// Appends a row of string fields. Panics on column-count mismatch.
    pub fn push_row_str(&mut self, fields: &[&str]) {
        assert_eq!(fields.len(), self.columns, "column count mismatch");
        for (i, f) in fields.iter().enumerate() {
            self.push_field(f, i == 0);
        }
        self.buf.push('\n');
    }

    /// Appends a row of mixed values already formatted by the caller.
    pub fn push_row(&mut self, fields: &[CsvField<'_>]) {
        assert_eq!(fields.len(), self.columns, "column count mismatch");
        let mut tmp = String::new();
        for (i, f) in fields.iter().enumerate() {
            tmp.clear();
            match f {
                CsvField::Str(s) => {
                    self.push_field(s, i == 0);
                    continue;
                }
                CsvField::Int(v) => {
                    let _ = write!(tmp, "{v}");
                }
                CsvField::Float(v) => {
                    if v.is_nan() {
                        tmp.push_str("NaN");
                    } else {
                        let _ = write!(tmp, "{v:.9e}");
                    }
                }
            }
            self.push_field(&tmp, i == 0);
        }
        self.buf.push('\n');
    }

    /// Finished CSV contents.
    pub fn contents(&self) -> &str {
        &self.buf
    }

    /// Writes to `path`, creating parent directories as needed.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, &self.buf)
    }
}

/// A typed CSV field.
#[derive(Debug, Clone)]
pub enum CsvField<'a> {
    /// A raw string field (quoted if necessary).
    Str(&'a str),
    /// An integer field.
    Int(i64),
    /// A floating-point field, written in scientific notation (or `NaN`).
    Float(f64),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_and_rows() {
        let mut w = CsvWriter::with_header(&["size", "time"]);
        w.push_row(&[CsvField::Int(8), CsvField::Float(1.25e-3)]);
        w.push_row(&[CsvField::Int(16), CsvField::Float(f64::NAN)]);
        let s = w.contents();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "size,time");
        assert!(lines[1].starts_with("8,1.25"));
        assert_eq!(lines[2], "16,NaN");
    }

    #[test]
    fn quoting_is_applied() {
        let mut w = CsvWriter::with_header(&["name"]);
        w.push_row_str(&["a,b\"c"]);
        assert_eq!(w.contents().lines().nth(1).unwrap(), "\"a,b\"\"c\"");
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn column_mismatch_panics() {
        let mut w = CsvWriter::with_header(&["a", "b"]);
        w.push_row_str(&["only-one"]);
    }
}
