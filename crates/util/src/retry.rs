//! Bounded retry with exponential backoff for transient I/O faults.
//!
//! One policy, two consumers: the store's positional read path retries
//! EINTR-style storage faults, and the serve crate's transport path
//! retries the same class of socket faults — both through this module,
//! so "what counts as transient" is decided in exactly one place.
//!
//! The classification is deliberate:
//!
//! * **Transient** — [`io::ErrorKind::Interrupted`] (EINTR),
//!   [`io::ErrorKind::WouldBlock`] (EAGAIN), and
//!   [`io::ErrorKind::TimedOut`]: the operation may succeed if simply
//!   re-issued, so a bounded retry is sound.
//! * **Permanent** — everything else. Checksum failures, corrupt
//!   footers, and protocol violations surface as `InvalidData`/`Other`
//!   (or as typed errors above the I/O layer) and re-reading cannot fix
//!   them; retrying would only re-read the same damage. They fail on the
//!   first attempt, always.
//!
//! This crate is dependency-free (it sits below `blazr-telemetry`), so
//! the policy reports *what happened* — retries performed, whether the
//! budget was exhausted — through [`Retried`], and each consumer counts
//! it into its own metric namespace (`store.io.*`, `serve.io.*`).

use std::io;
use std::time::Duration;

/// Bounded retry with exponential backoff for transient I/O faults
/// (EINTR-style: `Interrupted`, `WouldBlock`, `TimedOut`). An operation
/// run under this policy is attempted up to `attempts` times total,
/// sleeping `base_backoff`, `2×base_backoff`, … between tries;
/// non-transient errors and exhausted budgets propagate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub attempts: u32,
    /// Sleep before the first retry; doubles per subsequent retry.
    pub base_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 3,
            base_backoff: Duration::from_micros(100),
        }
    }
}

/// What [`RetryPolicy::run_with`] observed: the final result plus the
/// retry accounting the caller feeds into its telemetry.
#[derive(Debug)]
pub struct Retried<T> {
    /// The last attempt's outcome.
    pub result: io::Result<T>,
    /// Retries performed (attempts beyond the first).
    pub retries: u32,
    /// True when every attempt failed transiently and the budget ran
    /// out — the caller's "giveup" counter.
    pub gave_up: bool,
}

impl<T> Retried<T> {
    /// Unwraps into the plain result, dropping the accounting.
    pub fn into_result(self) -> io::Result<T> {
        self.result
    }
}

impl RetryPolicy {
    /// True for error kinds a bounded retry may fix: the EINTR-style
    /// class (`Interrupted`, `WouldBlock`, `TimedOut`). Data-integrity
    /// and protocol errors (`InvalidData`, `UnexpectedEof`, …) are
    /// permanent — re-issuing the operation re-reads the same damage.
    pub fn is_transient(kind: io::ErrorKind) -> bool {
        matches!(
            kind,
            io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        )
    }

    /// The sleep before retry number `retry` (0-based): `base_backoff`
    /// doubled `retry` times, with the shift capped so the arithmetic
    /// cannot overflow.
    pub fn backoff(&self, retry: u32) -> Duration {
        self.base_backoff * (1u32 << retry.min(16))
    }

    /// Runs `op` under this policy, sleeping between attempts. Returns
    /// the final result plus retry accounting.
    pub fn run<T>(&self, op: impl FnMut() -> io::Result<T>) -> Retried<T> {
        self.run_with(op, std::thread::sleep)
    }

    /// [`RetryPolicy::run`] with an explicit sleep function, so tests
    /// can observe the backoff schedule instead of waiting it out.
    ///
    /// `op` is attempted up to `self.attempts.max(1)` times. A success
    /// or a permanent (non-transient) error returns immediately; a
    /// transient error sleeps [`RetryPolicy::backoff`]`(retry)` and
    /// tries again until the budget is exhausted.
    pub fn run_with<T>(
        &self,
        mut op: impl FnMut() -> io::Result<T>,
        mut sleep: impl FnMut(Duration),
    ) -> Retried<T> {
        let budget = self.attempts.max(1);
        let mut retries = 0u32;
        loop {
            match op() {
                Ok(v) => {
                    return Retried {
                        result: Ok(v),
                        retries,
                        gave_up: false,
                    }
                }
                Err(e) if Self::is_transient(e.kind()) => {
                    if retries + 1 >= budget {
                        return Retried {
                            result: Err(e),
                            retries,
                            gave_up: true,
                        };
                    }
                    sleep(self.backoff(retries));
                    retries += 1;
                }
                Err(e) => {
                    return Retried {
                        result: Err(e),
                        retries,
                        gave_up: false,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(attempts: u32) -> RetryPolicy {
        RetryPolicy {
            attempts,
            base_backoff: Duration::from_micros(10),
        }
    }

    #[test]
    fn succeeds_after_transient_failures() {
        let mut left = 2;
        let out = policy(3).run_with(
            || {
                if left > 0 {
                    left -= 1;
                    Err(io::Error::new(io::ErrorKind::Interrupted, "eintr"))
                } else {
                    Ok(42)
                }
            },
            |_| {},
        );
        assert_eq!(out.result.unwrap(), 42);
        assert_eq!(out.retries, 2);
        assert!(!out.gave_up);
    }

    #[test]
    fn permanent_error_fails_first_attempt() {
        let mut calls = 0;
        let out = policy(5).run_with(
            || -> io::Result<()> {
                calls += 1;
                Err(io::Error::new(io::ErrorKind::InvalidData, "checksum"))
            },
            |_| panic!("permanent errors must not back off"),
        );
        assert_eq!(calls, 1);
        assert!(!out.gave_up);
        assert_eq!(out.result.unwrap_err().kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn exhausted_budget_gives_up_with_last_error() {
        let mut calls = 0;
        let out = policy(3).run_with(
            || -> io::Result<()> {
                calls += 1;
                Err(io::Error::new(io::ErrorKind::TimedOut, "stall"))
            },
            |_| {},
        );
        assert_eq!(calls, 3);
        assert!(out.gave_up);
        assert_eq!(out.retries, 2);
        assert_eq!(out.result.unwrap_err().kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn zero_attempts_still_runs_once() {
        let mut calls = 0;
        let out = policy(0).run_with(
            || -> io::Result<()> {
                calls += 1;
                Err(io::Error::new(io::ErrorKind::WouldBlock, "eagain"))
            },
            |_| {},
        );
        assert_eq!(calls, 1);
        assert!(out.gave_up);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = policy(u32::MAX);
        assert_eq!(p.backoff(0), Duration::from_micros(10));
        assert_eq!(p.backoff(1), Duration::from_micros(20));
        assert_eq!(p.backoff(4), Duration::from_micros(160));
        // The shift saturates instead of overflowing.
        assert_eq!(p.backoff(40), p.backoff(16));
    }
}
