//! Shared low-level substrates for the `blazr` workspace.
//!
//! This crate collects the infrastructure every other crate leans on:
//!
//! * [`rng`] — a deterministic, seedable xoshiro256++ generator (plus
//!   splitmix64 for seeding) used by all workload generators so every
//!   experiment in the repository is reproducible bit-for-bit.
//! * [`bits`] — MSB-first [`bits::BitWriter`]/[`bits::BitReader`] used by the
//!   codec serializers and the baseline compressors.
//! * [`negabinary`] — the sign-free integer representation used by the
//!   ZFP-style embedded coder.
//! * [`huffman`] — a canonical Huffman encoder/decoder used by the SZ-style
//!   baseline.
//! * [`stats`] — scalar statistics helpers (Welford mean/variance, extrema)
//!   used by tests and the benchmark harness.
//! * [`csv`] — a tiny CSV emitter for the figure-regeneration binaries.
//! * [`mmap`] — a `libc`-free read-only memory map used by the store's
//!   zero-copy read path (the crate's one `unsafe` island; everything
//!   else stays `deny(unsafe_code)`).
//! * [`vfs`] — the filesystem seam the store's I/O goes through, with a
//!   deterministic fault-injection wrapper ([`vfs::FaultyVfs`]) for
//!   torn-write, bit-rot, and transient-error testing.
//! * [`retry`] — the one transient-vs-permanent I/O error classification
//!   and bounded-backoff [`retry::RetryPolicy`] shared by the store's
//!   read path and the serve crate's transport path.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod csv;
pub mod huffman;
pub mod mmap;
pub mod negabinary;
pub mod retry;
pub mod rng;
pub mod stats;
pub mod vfs;
