//! Negabinary (base −2) integer representation.
//!
//! ZFP encodes transform coefficients in negabinary so that small-magnitude
//! values — positive or negative — have their significant bits concentrated
//! in the low bit positions, letting the embedded bit-plane coder truncate
//! streams without a separate sign pass. The mapping used here is the same
//! branch-free one as in the ZFP reference implementation:
//!
//! ```text
//! encode(x) = (x + M) ^ M      where M = 0xAAAA…AAAA
//! decode(y) = (y ^ M) - M
//! ```
//!
//! interpreted over two's-complement `i64`/`u64`.

const MASK: u64 = 0xAAAA_AAAA_AAAA_AAAA;

/// Converts a two's-complement integer to its negabinary representation.
#[inline]
pub fn to_negabinary(x: i64) -> u64 {
    ((x as u64).wrapping_add(MASK)) ^ MASK
}

/// Converts a negabinary representation back to a two's-complement integer.
#[inline]
pub fn from_negabinary(y: u64) -> i64 {
    (y ^ MASK).wrapping_sub(MASK) as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;

    #[test]
    fn zero_maps_to_zero() {
        assert_eq!(to_negabinary(0), 0);
        assert_eq!(from_negabinary(0), 0);
    }

    #[test]
    fn known_small_values() {
        // Base −2 digits: 1 = 1, -1 = 11 (i.e. 3), 2 = 110 (6), -2 = 10 (2)
        assert_eq!(to_negabinary(1), 0b1);
        assert_eq!(to_negabinary(-1), 0b11);
        assert_eq!(to_negabinary(2), 0b110);
        assert_eq!(to_negabinary(-2), 0b10);
        assert_eq!(to_negabinary(3), 0b111);
        assert_eq!(to_negabinary(-3), 0b1101);
    }

    #[test]
    fn negabinary_digits_reconstruct_value() {
        // Verify that interpreting the bits in base −2 yields the original.
        for x in -2000i64..2000 {
            let y = to_negabinary(x);
            let mut acc: i64 = 0;
            let mut place: i64 = 1;
            for i in 0..63 {
                if (y >> i) & 1 == 1 {
                    acc += place;
                }
                place = -place * 2;
            }
            assert_eq!(acc, x, "digit expansion of {x}");
        }
    }

    #[test]
    fn roundtrip_exhaustive_small() {
        for x in -10_000i64..10_000 {
            assert_eq!(from_negabinary(to_negabinary(x)), x);
        }
    }

    #[test]
    fn roundtrip_random_wide() {
        let mut rng = Xoshiro256pp::seed_from_u64(123);
        for _ in 0..100_000 {
            let x = rng.next_u64() as i64;
            assert_eq!(from_negabinary(to_negabinary(x)), x);
        }
    }

    #[test]
    fn small_magnitudes_use_few_bits() {
        // The property ZFP relies on: |x| small => few significant bits.
        for x in -8i64..=8 {
            let y = to_negabinary(x);
            assert!(64 - y.leading_zeros() <= 5, "x={x} y={y:b}");
        }
    }
}
