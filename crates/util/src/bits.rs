//! MSB-first bit-level I/O.
//!
//! Used by the PyBlaz-style serializer (`blazr::serialize`), the ZFP-style
//! embedded coder, and the SZ-style Huffman coder. Bits are packed most
//! significant first within each byte, which makes serialized streams easy
//! to inspect in hex dumps and matches the convention of the paper's §IV-C
//! accounting.

/// Accumulates bits MSB-first into a byte vector.
#[derive(Default, Debug, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Free bits remaining in the final byte (0..=8). 0 means the last byte
    /// is full (or no bytes have been written yet).
    free: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.free == 0 {
            self.bytes.len() * 8
        } else {
            self.bytes.len() * 8 - self.free as usize
        }
    }

    /// Writes a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        if self.free == 0 {
            self.bytes.push(0);
            self.free = 8;
        }
        self.free -= 1;
        if bit {
            let last = self.bytes.last_mut().expect("partial byte exists");
            *last |= 1 << self.free;
        }
    }

    /// Writes the low `n` bits of `value`, most significant of those first.
    pub fn write_bits(&mut self, value: u64, n: u32) {
        assert!(n <= 64);
        for i in (0..n).rev() {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    /// Convenience: writes a full `u64` (64 bits).
    pub fn write_u64(&mut self, value: u64) {
        self.write_bits(value, 64);
    }

    /// Finalizes the stream, returning the bytes (final byte zero-padded).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Bytes written so far, including a zero-padded partial byte.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize, // bit position
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Current bit position.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }

    /// Total number of bits available.
    pub fn bit_len(&self) -> usize {
        self.bytes.len() * 8
    }

    /// Remaining bits.
    pub fn remaining(&self) -> usize {
        self.bit_len().saturating_sub(self.pos)
    }

    /// Reads a single bit. Returns `None` past the end.
    pub fn read_bit(&mut self) -> Option<bool> {
        if self.pos >= self.bit_len() {
            return None;
        }
        let byte = self.bytes[self.pos / 8];
        let bit = (byte >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }

    /// Reads `n` bits into the low bits of a `u64`. Returns `None` if the
    /// stream is exhausted first.
    pub fn read_bits(&mut self, n: u32) -> Option<u64> {
        assert!(n <= 64);
        if self.remaining() < n as usize {
            return None;
        }
        let mut v = 0u64;
        for _ in 0..n {
            v = (v << 1) | self.read_bit()? as u64;
        }
        Some(v)
    }

    /// Reads a full `u64`.
    pub fn read_u64(&mut self) -> Option<u64> {
        self.read_bits(64)
    }

    /// Skips `n` bits.
    pub fn skip(&mut self, n: usize) {
        self.pos = (self.pos + n).min(self.bit_len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;

    #[test]
    fn single_bits_roundtrip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.write_bit(b);
        }
        assert_eq!(w.bit_len(), 9);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit(), Some(b));
        }
    }

    #[test]
    fn msb_first_layout() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011, 4);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1011_0000]);
    }

    #[test]
    fn multi_width_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0x3, 2);
        w.write_bits(0x1234_5678_9ABC_DEF0, 64);
        w.write_bits(0x1F, 5);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(2), Some(0x3));
        assert_eq!(r.read_bits(64), Some(0x1234_5678_9ABC_DEF0));
        assert_eq!(r.read_bits(5), Some(0x1F));
    }

    #[test]
    fn read_past_end_returns_none() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        // One byte = 8 bits available (padded); after that None.
        assert!(r.read_bits(8).is_some());
        assert_eq!(r.read_bit(), None);
        assert_eq!(r.read_bits(1), None);
    }

    #[test]
    fn randomized_roundtrip() {
        let mut rng = Xoshiro256pp::seed_from_u64(77);
        for _ in 0..50 {
            let mut w = BitWriter::new();
            let mut expected = Vec::new();
            for _ in 0..200 {
                let n = rng.range(1, 33) as u32;
                let v = rng.next_u64() & ((1u64 << n) - 1).max(1);
                let v = if n == 64 { v } else { v & ((1u64 << n) - 1) };
                w.write_bits(v, n);
                expected.push((v, n));
            }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            for (v, n) in expected {
                assert_eq!(r.read_bits(n), Some(v));
            }
        }
    }

    #[test]
    fn bit_len_tracks_writes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bit(true);
        assert_eq!(w.bit_len(), 1);
        w.write_bits(0, 7);
        assert_eq!(w.bit_len(), 8);
        w.write_bits(0, 3);
        assert_eq!(w.bit_len(), 11);
    }
}
