//! MSB-first bit-level I/O.
//!
//! Used by the PyBlaz-style serializer (`blazr::serialize`), the ZFP-style
//! embedded coder, and the SZ-style Huffman coder. Bits are packed most
//! significant first within each byte, which makes serialized streams easy
//! to inspect in hex dumps and matches the convention of the paper's §IV-C
//! accounting.

/// A mask of the low `n` bits (`n <= 64`).
#[inline]
fn low_mask(n: u32) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Accumulates bits MSB-first into a byte vector.
#[derive(Default, Debug, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Free bits remaining in the final byte (0..=8). 0 means the last byte
    /// is full (or no bytes have been written yet).
    free: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.free == 0 {
            self.bytes.len() * 8
        } else {
            self.bytes.len() * 8 - self.free as usize
        }
    }

    /// Writes a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        if self.free == 0 {
            self.bytes.push(0);
            self.free = 8;
        }
        self.free -= 1;
        if bit {
            let last = self.bytes.last_mut().expect("partial byte exists");
            *last |= 1 << self.free;
        }
    }

    /// Writes the low `n` bits of `value`, most significant of those
    /// first. Word-level: fills the current partial byte, then emits whole
    /// bytes directly (the serializer's hot path).
    pub fn write_bits(&mut self, value: u64, n: u32) {
        assert!(n <= 64);
        let mut left = n;
        // Top up the current partial byte.
        if self.free > 0 && left > 0 {
            let take = self.free.min(left);
            let chunk = (value >> (left - take)) & low_mask(take);
            let last = self.bytes.last_mut().expect("partial byte exists");
            *last |= (chunk as u8) << (self.free - take);
            self.free -= take;
            left -= take;
        }
        // Whole bytes.
        while left >= 8 {
            self.bytes.push((value >> (left - 8)) as u8);
            left -= 8;
        }
        // Leftover high bits of a fresh byte.
        if left > 0 {
            let chunk = (value & low_mask(left)) as u8;
            self.bytes.push(chunk << (8 - left));
            self.free = 8 - left;
        }
    }

    /// Appends the first `bit_len` bits of another stream's bytes (as
    /// produced by [`BitWriter::into_bytes`]). This is what lets
    /// serialization chunk its payload into independently written pieces
    /// and splice them back in order.
    pub fn append_bits(&mut self, bytes: &[u8], bit_len: usize) {
        assert!(bit_len <= bytes.len() * 8, "bit_len exceeds byte data");
        let full = bit_len / 8;
        let rem = (bit_len % 8) as u32;
        if self.free == 0 {
            // Byte-aligned fast path: splice whole bytes directly.
            self.bytes.extend_from_slice(&bytes[..full]);
            if rem > 0 {
                self.bytes.push(bytes[full] & (0xFFu8 << (8 - rem)));
                self.free = 8 - rem;
            }
        } else {
            // Unaligned splice: each source byte's top `free` bits finish
            // the current partial byte and the rest open the next one, so
            // `free` is invariant across the loop — two shifts per byte.
            let free = self.free;
            self.bytes.reserve(full + 1);
            for &b in &bytes[..full] {
                let last = self.bytes.last_mut().expect("partial byte exists");
                *last |= b >> (8 - free);
                self.bytes.push(b << free);
            }
            if rem > 0 {
                self.write_bits((bytes[full] >> (8 - rem)) as u64, rem);
            }
        }
    }

    /// Convenience: writes a full `u64` (64 bits).
    pub fn write_u64(&mut self, value: u64) {
        self.write_bits(value, 64);
    }

    /// Convenience: writes a full `u32` (32 bits) — the word granularity
    /// of the rANS renormalization stream.
    pub fn write_u32(&mut self, value: u32) {
        self.write_bits(value as u64, 32);
    }

    /// Finalizes the stream, returning the bytes (final byte zero-padded).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Bytes written so far, including a zero-padded partial byte.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize, // bit position
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Creates a reader positioned at `bit_pos` (clamped to the end).
    /// Fixed-width payload sections have computable per-element offsets,
    /// so independent readers can decode ranges of a stream in parallel.
    pub fn at(bytes: &'a [u8], bit_pos: usize) -> Self {
        Self {
            pos: bit_pos.min(bytes.len() * 8),
            bytes,
        }
    }

    /// Current bit position.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }

    /// Total number of bits available.
    pub fn bit_len(&self) -> usize {
        self.bytes.len() * 8
    }

    /// Remaining bits.
    pub fn remaining(&self) -> usize {
        self.bit_len().saturating_sub(self.pos)
    }

    /// Reads a single bit. Returns `None` past the end.
    pub fn read_bit(&mut self) -> Option<bool> {
        if self.pos >= self.bit_len() {
            return None;
        }
        let byte = self.bytes[self.pos / 8];
        let bit = (byte >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }

    /// Reads `n` bits into the low bits of a `u64`. Returns `None` if the
    /// stream is exhausted first. Word-level: finishes the current partial
    /// byte, then consumes whole bytes directly.
    pub fn read_bits(&mut self, n: u32) -> Option<u64> {
        assert!(n <= 64);
        if self.remaining() < n as usize {
            return None;
        }
        let mut v = 0u64;
        let mut left = n;
        // Finish the current partial byte.
        let in_byte = (self.pos % 8) as u32;
        if in_byte != 0 && left > 0 {
            let avail = 8 - in_byte;
            let take = avail.min(left);
            let byte = self.bytes[self.pos / 8] as u64;
            v = (byte >> (avail - take)) & low_mask(take);
            self.pos += take as usize;
            left -= take;
        }
        // Whole bytes.
        while left >= 8 {
            v = (v << 8) | self.bytes[self.pos / 8] as u64;
            self.pos += 8;
            left -= 8;
        }
        // Leading bits of the next byte.
        if left > 0 {
            let byte = self.bytes[self.pos / 8] as u64;
            v = (v << left) | (byte >> (8 - left));
            self.pos += left as usize;
        }
        Some(v)
    }

    /// Reads a full `u64`.
    pub fn read_u64(&mut self) -> Option<u64> {
        self.read_bits(64)
    }

    /// Reads a full `u32` — the word granularity entropy decoders
    /// renormalize through.
    pub fn read_u32(&mut self) -> Option<u32> {
        self.read_bits(32).map(|v| v as u32)
    }

    /// Skips `n` bits.
    pub fn skip(&mut self, n: usize) {
        self.pos = (self.pos + n).min(self.bit_len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;

    #[test]
    fn single_bits_roundtrip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.write_bit(b);
        }
        assert_eq!(w.bit_len(), 9);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit(), Some(b));
        }
    }

    #[test]
    fn msb_first_layout() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011, 4);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1011_0000]);
    }

    #[test]
    fn multi_width_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0x3, 2);
        w.write_bits(0x1234_5678_9ABC_DEF0, 64);
        w.write_bits(0x1F, 5);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(2), Some(0x3));
        assert_eq!(r.read_bits(64), Some(0x1234_5678_9ABC_DEF0));
        assert_eq!(r.read_bits(5), Some(0x1F));
    }

    #[test]
    fn read_past_end_returns_none() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        // One byte = 8 bits available (padded); after that None.
        assert!(r.read_bits(8).is_some());
        assert_eq!(r.read_bit(), None);
        assert_eq!(r.read_bits(1), None);
    }

    #[test]
    fn randomized_roundtrip() {
        let mut rng = Xoshiro256pp::seed_from_u64(77);
        for _ in 0..50 {
            let mut w = BitWriter::new();
            let mut expected = Vec::new();
            for _ in 0..200 {
                let n = rng.range(1, 33) as u32;
                let v = rng.next_u64() & ((1u64 << n) - 1).max(1);
                let v = if n == 64 { v } else { v & ((1u64 << n) - 1) };
                w.write_bits(v, n);
                expected.push((v, n));
            }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            for (v, n) in expected {
                assert_eq!(r.read_bits(n), Some(v));
            }
        }
    }

    #[test]
    fn append_bits_splices_streams_at_any_alignment() {
        let mut rng = Xoshiro256pp::seed_from_u64(42);
        for lead in 0..17usize {
            // Reference: one writer fed everything.
            let fields: Vec<(u64, u32)> = (0..100)
                .map(|_| {
                    let n = rng.range(1, 65) as u32;
                    (rng.next_u64() & low_mask(n), n)
                })
                .collect();
            let mut reference = BitWriter::new();
            for _ in 0..lead {
                reference.write_bit(true);
            }
            for &(v, n) in &fields {
                reference.write_bits(v, n);
            }

            // Same stream via two sub-writers spliced with append_bits.
            let mut w = BitWriter::new();
            for _ in 0..lead {
                w.write_bit(true);
            }
            let (first, second) = fields.split_at(fields.len() / 2);
            for part in [first, second] {
                let mut pw = BitWriter::new();
                for &(v, n) in part {
                    pw.write_bits(v, n);
                }
                let bit_len = pw.bit_len();
                w.append_bits(&pw.into_bytes(), bit_len);
            }
            assert_eq!(w.bit_len(), reference.bit_len(), "lead {lead}");
            assert_eq!(w.into_bytes(), reference.into_bytes(), "lead {lead}");
        }
    }

    #[test]
    fn reader_at_matches_sequential_reader() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        for i in 0..50u64 {
            w.write_bits(i, 13);
        }
        let bytes = w.into_bytes();
        for i in 0..50 {
            let mut r = BitReader::at(&bytes, 3 + i * 13);
            assert_eq!(r.read_bits(13), Some(i as u64));
        }
        // Past-the-end offsets clamp and read nothing.
        let mut r = BitReader::at(&bytes, 1 << 20);
        assert_eq!(r.read_bit(), None);
    }

    #[test]
    fn word_helpers_roundtrip_at_any_alignment() {
        for lead in 0..9u32 {
            let mut w = BitWriter::new();
            if lead > 0 {
                w.write_bits(0x1FF & low_mask(lead), lead);
            }
            w.write_u32(0xDEAD_BEEF);
            w.write_u32(7);
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            if lead > 0 {
                r.read_bits(lead);
            }
            assert_eq!(r.read_u32(), Some(0xDEAD_BEEF), "lead {lead}");
            assert_eq!(r.read_u32(), Some(7), "lead {lead}");
            assert_eq!(r.read_u32(), None, "lead {lead}");
        }
    }

    #[test]
    fn bit_len_tracks_writes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bit(true);
        assert_eq!(w.bit_len(), 1);
        w.write_bits(0, 7);
        assert_eq!(w.bit_len(), 8);
        w.write_bits(0, 3);
        assert_eq!(w.bit_len(), 11);
    }
}
