//! Read-only memory-mapped files without `libc`.
//!
//! The store's zero-copy read path wants chunk payloads as `&[u8]`
//! slices straight out of the page cache. The build environment has no
//! crates.io access (so no `libc`/`memmap2`), and `std` exposes no
//! mapping API — this module is the small shim: it issues the `mmap` /
//! `munmap` system calls directly via `core::arch::asm!` on Linux
//! x86_64/aarch64 and wraps the mapping in a safe, `Send + Sync`,
//! `Deref<Target = [u8]>` handle. On any other platform [`Mmap::map`]
//! returns `Ok(None)` and callers fall back to positional reads.
//!
//! # Safety contract
//!
//! A mapping aliases the file: if another process truncates the file
//! while it is mapped, touching the vanished pages raises `SIGBUS`.
//! Callers must only map files with immutable contents — the store
//! qualifies because finished store files are only ever replaced whole
//! via atomic rename (the reader keeps the old inode's pages), never
//! truncated or rewritten in place.

// The one sanctioned unsafe island of the workspace (see the workspace
// `unsafe_code = "deny"` lint): raw syscalls plus the slice construction
// over the returned pages, each with its invariants argued inline.
#![allow(unsafe_code)]

use std::fs::File;
use std::io;
use std::ops::Deref;

/// Supported platforms: Linux on x86_64 or aarch64 (the syscall ABI the
/// shim encodes). Everywhere else `map` reports "unsupported".
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    use std::os::unix::io::RawFd;

    /// `PROT_READ`.
    const PROT_READ: usize = 1;
    /// `MAP_PRIVATE`: a read-only private mapping; writes by others via
    /// the file are not our concern (store files are immutable).
    const MAP_PRIVATE: usize = 2;

    #[cfg(target_arch = "x86_64")]
    const SYS_MMAP: usize = 9;
    #[cfg(target_arch = "x86_64")]
    const SYS_MUNMAP: usize = 11;
    #[cfg(target_arch = "aarch64")]
    const SYS_MMAP: usize = 222;
    #[cfg(target_arch = "aarch64")]
    const SYS_MUNMAP: usize = 215;

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(
        nr: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        // SAFETY: a plain Linux syscall; `syscall` clobbers rcx/r11 and
        // the flags, which the asm block declares.
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") nr as isize => ret,
                in("rdi") a,
                in("rsi") b,
                in("rdx") c,
                in("r10") d,
                in("r8") e,
                in("r9") f,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(
        nr: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        // SAFETY: a plain Linux syscall via `svc 0`.
        unsafe {
            core::arch::asm!(
                "svc 0",
                in("x8") nr,
                inlateout("x0") a as isize => ret,
                in("x1") b,
                in("x2") c,
                in("x3") d,
                in("x4") e,
                in("x5") f,
                options(nostack),
            );
        }
        ret
    }

    /// Maps `len` readable bytes of `fd` starting at offset 0. Returns
    /// the mapping's base address.
    pub(super) fn mmap_readonly(fd: RawFd, len: usize) -> std::io::Result<*const u8> {
        // SAFETY: arguments follow the mmap(2) ABI; the kernel validates
        // them and returns -errno on failure, which we decode below. A
        // successful MAP_PRIVATE|PROT_READ mapping of a file we hold
        // open cannot violate memory safety by itself.
        let ret = unsafe { syscall6(SYS_MMAP, 0, len, PROT_READ, MAP_PRIVATE, fd as usize, 0) };
        if (-4095..0).contains(&ret) {
            return Err(std::io::Error::from_raw_os_error(-ret as i32));
        }
        Ok(ret as *const u8)
    }

    /// Unmaps a mapping produced by [`mmap_readonly`].
    pub(super) fn munmap(ptr: *const u8, len: usize) {
        // SAFETY: `ptr`/`len` came from a successful mmap and are
        // unmapped exactly once (Drop). Failure is unreachable for a
        // valid mapping and would only leak address space, so the
        // return value is deliberately ignored.
        let _ = unsafe { syscall6(SYS_MUNMAP, ptr as usize, len, 0, 0, 0, 0) };
    }
}

/// A read-only memory mapping of a whole file.
///
/// Dereferences to `&[u8]` over the file's bytes. The mapping is
/// released on drop. See the module docs for the immutable-file safety
/// contract.
pub struct Mmap {
    /// Base address of the mapping; dangling (never dereferenced) when
    /// `len == 0`, because Linux rejects zero-length mappings.
    ptr: *const u8,
    len: usize,
}

// SAFETY: the mapping is read-only and private; shared `&[u8]` access
// from any thread is exactly what PROT_READ provides, and munmap only
// happens in Drop (unique access).
unsafe impl Send for Mmap {}
// SAFETY: as above — concurrent reads of immutable pages are safe.
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps all of `file` read-only. Returns `Ok(None)` on platforms the
    /// shim does not support (callers should fall back to positional
    /// reads) and `Err` when the platform supports mapping but the
    /// kernel refused this file.
    pub fn map(file: &File) -> io::Result<Option<Mmap>> {
        let len = file.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidInput, "file exceeds address space")
        })?;
        Self::map_len(file, len)
    }

    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    fn map_len(file: &File, len: usize) -> io::Result<Option<Mmap>> {
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            // Zero-length mappings are invalid; serve an empty slice.
            return Ok(Some(Mmap {
                ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(),
                len: 0,
            }));
        }
        let ptr = sys::mmap_readonly(file.as_raw_fd(), len)?;
        Ok(Some(Mmap { ptr, len }))
    }

    #[cfg(not(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    )))]
    fn map_len(_file: &File, _len: usize) -> io::Result<Option<Mmap>> {
        Ok(None)
    }

    /// Length of the mapped file in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for a mapping of an empty file.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: `ptr` is the base of a live PROT_READ mapping of
        // exactly `len` bytes (established in `map_len`, released only
        // in Drop), and the mapped file is immutable per the module
        // contract, so the bytes are valid, initialized, and unaliased
        // by writers for the borrow's lifetime.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        if self.len > 0 {
            sys::munmap(self.ptr, self.len);
        }
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("blazr-util-mmap");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn maps_file_contents() {
        let p = tmp("contents.bin");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::File::create(&p)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let file = std::fs::File::open(&p).unwrap();
        match Mmap::map(&file).unwrap() {
            Some(m) => {
                assert_eq!(m.len(), payload.len());
                assert_eq!(&m[..], &payload[..]);
                // A second independent mapping sees the same bytes.
                let m2 = Mmap::map(&file).unwrap().unwrap();
                assert_eq!(&m2[..], &m[..]);
            }
            None => eprintln!("mmap unsupported on this platform; fallback path covers it"),
        }
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let p = tmp("empty.bin");
        std::fs::File::create(&p).unwrap();
        let file = std::fs::File::open(&p).unwrap();
        if let Some(m) = Mmap::map(&file).unwrap() {
            assert!(m.is_empty());
            assert_eq!(&m[..], &[] as &[u8]);
        }
    }

    #[test]
    fn mapping_survives_file_handle_drop_and_rename_over() {
        // The atomic-rename ingest pattern: a reader's mapping must keep
        // seeing the old inode after the path is renamed over.
        let p = tmp("rename.bin");
        std::fs::File::create(&p)
            .unwrap()
            .write_all(b"old-bytes")
            .unwrap();
        let file = std::fs::File::open(&p).unwrap();
        let Some(m) = Mmap::map(&file).unwrap() else {
            return;
        };
        drop(file);
        let p2 = tmp("rename-new.bin");
        std::fs::File::create(&p2)
            .unwrap()
            .write_all(b"new-bytes")
            .unwrap();
        std::fs::rename(&p2, &p).unwrap();
        assert_eq!(&m[..], b"old-bytes");
    }
}
