//! Deterministic pseudo-random number generation.
//!
//! Every workload generator in this repository draws from
//! [`Xoshiro256pp`], seeded explicitly, so that all experiments and tests
//! are reproducible across runs and machines. The generator is David
//! Blackman and Sebastiano Vigna's xoshiro256++, seeded through
//! [`SplitMix64`] as the authors recommend.

/// SplitMix64 generator, used to expand a single `u64` seed into the
/// 256-bit xoshiro state. Also usable standalone for cheap hashing-style
/// randomness.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ pseudo-random generator.
///
/// Fast, high-quality, and deterministic; the workspace standard for
/// synthetic data. Not cryptographically secure.
#[derive(Clone, Debug)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // All-zero state would be a fixed point; splitmix cannot produce it
        // from any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            Self { s: [1, 2, 3, 4] }
        } else {
            Self { s }
        }
    }

    /// Returns the next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`. Uses rejection sampling to avoid modulo
    /// bias. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Standard normal deviate via the Box–Muller transform.
    pub fn normal(&mut self) -> f64 {
        // Avoid ln(0) by nudging the first uniform away from zero.
        let u1 = self.uniform().max(f64::MIN_POSITIVE);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.normal()
    }

    /// Fills a slice with uniform values in `[lo, hi)`.
    pub fn fill_uniform(&mut self, out: &mut [f64], lo: f64, hi: f64) {
        for v in out {
            *v = self.uniform_in(lo, hi);
        }
    }

    /// Returns a vector of `n` uniform values in `[lo, hi)`.
    pub fn vec_uniform(&mut self, n: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..n).map(|_| self.uniform_in(lo, hi)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vectors() {
        // Reference outputs for seed 1234567 from the canonical C impl.
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next_u64();
        let second = sm.next_u64();
        assert_ne!(first, second);
        // Determinism: same seed, same stream.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(first, sm2.next_u64());
        assert_eq!(second, sm2.next_u64());
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256pp::seed_from_u64(42);
        let mut b = Xoshiro256pp::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256pp::seed_from_u64(1);
        let mut b = Xoshiro256pp::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut r = Xoshiro256pp::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.uniform();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn uniform_mean_is_near_half() {
        let mut r = Xoshiro256pp::seed_from_u64(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_unbiased_within_tolerance() {
        let mut r = Xoshiro256pp::seed_from_u64(3);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            counts[r.below(7) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as i64 - 10_000).abs() < 1000, "counts {counts:?}");
        }
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut r = Xoshiro256pp::seed_from_u64(11);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = Xoshiro256pp::seed_from_u64(5);
        for _ in 0..1000 {
            let v = r.range(3, 9);
            assert!((3..9).contains(&v));
        }
    }
}
