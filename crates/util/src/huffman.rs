//! Canonical Huffman coding over `u32` symbols.
//!
//! Substrate for the SZ-style baseline (`blazr-baselines::szoid`), which
//! Huffman-codes its quantization indices exactly as SZ does. The
//! implementation builds an optimal prefix code from symbol frequencies,
//! converts it to canonical form (so only code lengths need to be
//! serialized), and provides bit-level encode/decode through
//! [`crate::bits`].

use crate::bits::{BitReader, BitWriter};
use std::collections::BinaryHeap;

/// Maximum code length we permit. With length-limited canonical assignment
/// this is plenty for the symbol counts the codecs produce.
const MAX_CODE_LEN: u32 = 58;

/// A built Huffman codebook: per-symbol code lengths and canonical codes.
#[derive(Debug, Clone)]
pub struct Codebook {
    /// `lengths[sym]` is the code length in bits; 0 if the symbol is unused.
    pub lengths: Vec<u32>,
    /// `codes[sym]` is the canonical code value, MSB-aligned to its length.
    pub codes: Vec<u64>,
}

#[derive(PartialEq, Eq)]
struct HeapItem {
    weight: u64,
    // Tie-break on node id for determinism.
    id: usize,
    node: usize,
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for min-heap behaviour on BinaryHeap (a max-heap).
        other
            .weight
            .cmp(&self.weight)
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Codebook {
    /// Builds a canonical Huffman codebook from symbol frequencies.
    ///
    /// `freqs[sym]` is the occurrence count of `sym`; zero-frequency symbols
    /// get no code. Panics if every frequency is zero.
    pub fn from_frequencies(freqs: &[u64]) -> Self {
        let used: Vec<usize> = (0..freqs.len()).filter(|&s| freqs[s] > 0).collect();
        assert!(!used.is_empty(), "cannot build a codebook with no symbols");
        let mut lengths = vec![0u32; freqs.len()];
        if used.len() == 1 {
            // Degenerate alphabet: assign a 1-bit code.
            lengths[used[0]] = 1;
        } else {
            // Standard Huffman tree over internal nodes.
            // node layout: 0..n are leaves (indices into `used`), then
            // internal nodes. parent[] tracks merges.
            let n = used.len();
            let mut parent = vec![usize::MAX; 2 * n - 1];
            let mut heap = BinaryHeap::new();
            for (i, &s) in used.iter().enumerate() {
                heap.push(HeapItem {
                    weight: freqs[s],
                    id: i,
                    node: i,
                });
            }
            let mut next = n;
            while heap.len() > 1 {
                let a = heap.pop().expect("heap nonempty");
                let b = heap.pop().expect("heap nonempty");
                parent[a.node] = next;
                parent[b.node] = next;
                heap.push(HeapItem {
                    weight: a.weight.saturating_add(b.weight),
                    id: next,
                    node: next,
                });
                next += 1;
            }
            // Depth of each leaf = code length.
            for (i, &s) in used.iter().enumerate() {
                let mut d = 0;
                let mut cur = i;
                while parent[cur] != usize::MAX {
                    cur = parent[cur];
                    d += 1;
                }
                lengths[s] = d;
            }
        }
        let max_len = lengths.iter().copied().max().unwrap_or(0);
        assert!(
            max_len <= MAX_CODE_LEN,
            "Huffman code length {max_len} exceeds supported maximum"
        );
        let codes = canonical_codes(&lengths);
        Self { lengths, codes }
    }

    /// Rebuilds canonical codes from stored lengths (e.g. after
    /// deserializing only the lengths).
    pub fn from_lengths(lengths: Vec<u32>) -> Self {
        let codes = canonical_codes(&lengths);
        Self { lengths, codes }
    }

    /// Encodes a symbol stream.
    pub fn encode(&self, symbols: &[u32], w: &mut BitWriter) {
        for &s in symbols {
            let s = s as usize;
            let len = self.lengths[s];
            assert!(len > 0, "symbol {s} has no code");
            w.write_bits(self.codes[s], len);
        }
    }

    /// Decodes `count` symbols from the reader. Returns `None` on a
    /// malformed stream.
    pub fn decode(&self, r: &mut BitReader<'_>, count: usize) -> Option<Vec<u32>> {
        let table = DecodeTable::new(self);
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(table.decode_one(r)?);
        }
        Some(out)
    }

    /// Expected encoded size in bits for the given frequency profile.
    pub fn encoded_bits(&self, freqs: &[u64]) -> u64 {
        freqs
            .iter()
            .zip(&self.lengths)
            .map(|(&f, &l)| f * l as u64)
            .sum()
    }
}

/// Assigns canonical codes from code lengths: symbols sorted by
/// (length, symbol index) receive consecutive code values.
fn canonical_codes(lengths: &[u32]) -> Vec<u64> {
    let mut order: Vec<usize> = (0..lengths.len()).filter(|&s| lengths[s] > 0).collect();
    order.sort_by_key(|&s| (lengths[s], s));
    let mut codes = vec![0u64; lengths.len()];
    let mut code = 0u64;
    let mut prev_len = 0u32;
    for &s in &order {
        let len = lengths[s];
        code <<= len - prev_len;
        codes[s] = code;
        code += 1;
        prev_len = len;
    }
    codes
}

/// Canonical-code decoding table: per-length first-code and symbol offsets.
struct DecodeTable {
    /// For each length l: (first code value of length l, index into `syms`).
    first: Vec<(u64, usize)>,
    counts: Vec<usize>,
    syms: Vec<u32>,
    max_len: u32,
}

impl DecodeTable {
    fn new(book: &Codebook) -> Self {
        let max_len = book.lengths.iter().copied().max().unwrap_or(0);
        let mut order: Vec<usize> = (0..book.lengths.len())
            .filter(|&s| book.lengths[s] > 0)
            .collect();
        order.sort_by_key(|&s| (book.lengths[s], s));
        let mut first = vec![(0u64, 0usize); (max_len + 1) as usize];
        let mut counts = vec![0usize; (max_len + 1) as usize];
        for &s in &order {
            counts[book.lengths[s] as usize] += 1;
        }
        let mut idx = 0usize;
        let mut code = 0u64;
        for l in 1..=max_len as usize {
            code <<= 1;
            first[l] = (code, idx);
            code += counts[l] as u64;
            idx += counts[l];
        }
        let syms = order.iter().map(|&s| s as u32).collect();
        Self {
            first,
            counts,
            syms,
            max_len,
        }
    }

    fn decode_one(&self, r: &mut BitReader<'_>) -> Option<u32> {
        let mut code = 0u64;
        for l in 1..=self.max_len as usize {
            code = (code << 1) | r.read_bit()? as u64;
            let (fc, idx) = self.first[l];
            let cnt = self.counts[l] as u64;
            if cnt > 0 && code >= fc && code < fc + cnt {
                return Some(self.syms[idx + (code - fc) as usize]);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;

    fn roundtrip(symbols: &[u32], alphabet: usize) {
        let mut freqs = vec![0u64; alphabet];
        for &s in symbols {
            freqs[s as usize] += 1;
        }
        let book = Codebook::from_frequencies(&freqs);
        let mut w = BitWriter::new();
        book.encode(symbols, &mut w);
        let bits = w.bit_len() as u64;
        assert_eq!(bits, book.encoded_bits(&freqs));
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let decoded = book.decode(&mut r, symbols.len()).expect("decodable");
        assert_eq!(decoded, symbols);
    }

    #[test]
    fn single_symbol_alphabet() {
        roundtrip(&[3, 3, 3, 3, 3], 8);
    }

    #[test]
    fn two_symbol_alphabet() {
        roundtrip(&[0, 1, 0, 0, 1, 0, 1, 1, 1, 0], 2);
    }

    #[test]
    fn skewed_distribution_compresses() {
        // 90% of mass on one symbol => < 2 bits/symbol on average.
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let symbols: Vec<u32> = (0..10_000)
            .map(|_| {
                if rng.uniform() < 0.9 {
                    0
                } else {
                    1 + rng.below(15) as u32
                }
            })
            .collect();
        let mut freqs = vec![0u64; 16];
        for &s in &symbols {
            freqs[s as usize] += 1;
        }
        let book = Codebook::from_frequencies(&freqs);
        let bits = book.encoded_bits(&freqs);
        assert!(
            (bits as f64) < 2.0 * symbols.len() as f64,
            "bits/symbol = {}",
            bits as f64 / symbols.len() as f64
        );
        roundtrip(&symbols, 16);
    }

    #[test]
    fn uniform_distribution_roundtrips() {
        let mut rng = Xoshiro256pp::seed_from_u64(10);
        let symbols: Vec<u32> = (0..5_000).map(|_| rng.below(100) as u32).collect();
        roundtrip(&symbols, 100);
    }

    #[test]
    fn kraft_inequality_holds() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let freqs: Vec<u64> = (0..64).map(|_| rng.below(1000)).collect();
        if freqs.iter().all(|&f| f == 0) {
            return;
        }
        let book = Codebook::from_frequencies(&freqs);
        let kraft: f64 = book
            .lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-(l as i32)))
            .sum();
        assert!(kraft <= 1.0 + 1e-12, "kraft sum {kraft}");
    }

    #[test]
    fn codes_are_prefix_free() {
        let freqs = vec![5, 9, 12, 13, 16, 45, 0, 3];
        let book = Codebook::from_frequencies(&freqs);
        let coded: Vec<(u64, u32)> = (0..freqs.len())
            .filter(|&s| book.lengths[s] > 0)
            .map(|s| (book.codes[s], book.lengths[s]))
            .collect();
        for (i, &(ca, la)) in coded.iter().enumerate() {
            for (j, &(cb, lb)) in coded.iter().enumerate() {
                if i == j {
                    continue;
                }
                let l = la.min(lb);
                assert_ne!(ca >> (la - l), cb >> (lb - l), "prefix collision");
            }
        }
    }

    #[test]
    fn lengths_only_rebuild_matches() {
        let freqs = vec![7, 1, 1, 2, 11, 0, 4];
        let a = Codebook::from_frequencies(&freqs);
        let b = Codebook::from_lengths(a.lengths.clone());
        assert_eq!(a.codes, b.codes);
    }

    #[test]
    fn optimality_on_textbook_example() {
        // Classic example: weighted path length must equal the known optimum.
        let freqs = vec![45u64, 13, 12, 16, 9, 5];
        let book = Codebook::from_frequencies(&freqs);
        let total = book.encoded_bits(&freqs);
        assert_eq!(total, 224); // optimal for this distribution
    }
}
