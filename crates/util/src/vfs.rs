//! A minimal virtual filesystem seam, plus a deterministic
//! fault-injection wrapper.
//!
//! The store's writer and reader perform a small, fixed set of I/O
//! operations: create/open a file, append bytes, positional reads,
//! fsync, rename, unlink, directory sync, and (optionally) memory-map.
//! [`Vfs`]/[`VfsFile`] name exactly that set, [`OsVfs`] implements it on
//! `std::fs`, and [`FaultyVfs`] wraps any implementation with a
//! **scriptable fault plan**: fail the Nth write with ENOSPC, tear a
//! write after k bytes, short-read, return EINTR-style transient errors
//! that succeed on retry, flip bits in the bytes a reader sees, or
//! refuse a memory map. Every fault is deterministic — a plan is a list
//! of [`FaultRule`]s keyed by per-operation indices, so a test can sweep
//! "kill the ingest at every write boundary" exhaustively, and seeded
//! helpers ([`seeded_bit_rot`]) derive reproducible corruption patterns
//! from a [`crate::rng`] seed.
//!
//! Faults are injected **between** the caller and the real filesystem:
//! a torn write really does persist its prefix, so crash-consistency
//! tests observe the same directory states a power cut would leave.

use crate::mmap::Mmap;
use crate::rng::Xoshiro256pp;
use std::fs::File;
use std::io;
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One open file behind the [`Vfs`] seam.
///
/// Writers only ever append (`append_all`); readers only ever read at
/// explicit offsets (`read_exact_at`) or map the whole file (`mmap`), so
/// no cursor state is shared and implementations stay trivially
/// race-free under parallel reads.
pub trait VfsFile: Send + Sync + std::fmt::Debug {
    /// Reads exactly `buf.len()` bytes at `offset`.
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()>;

    /// Appends all of `buf` at the current end of file.
    fn append_all(&mut self, buf: &[u8]) -> io::Result<()>;

    /// Flushes file contents and metadata to stable storage.
    fn sync_all(&self) -> io::Result<()>;

    /// Current file length in bytes.
    fn len(&self) -> io::Result<u64>;

    /// True for a zero-length file.
    fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Memory-maps the whole file read-only. `Ok(None)` means mapping is
    /// unsupported here (callers fall back to positional reads);
    /// `Err` means the platform supports mapping but this file refused.
    fn mmap(&self) -> io::Result<Option<Mmap>> {
        Ok(None)
    }
}

/// The filesystem operations the store needs, as a trait so tests can
/// interpose faults (and future backends can virtualize storage).
pub trait Vfs: Send + Sync {
    /// Creates (truncating) a file for appending.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;

    /// Opens an existing file read-only.
    fn open(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;

    /// Atomically renames `from` onto `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Unlinks a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Fsyncs a directory, making renames within it durable.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
}

// ---------------------------------------------------------------------------
// The real filesystem.

/// [`Vfs`] over `std::fs` — the production implementation.
#[derive(Debug, Default, Clone, Copy)]
pub struct OsVfs;

/// A real file behind the seam.
#[derive(Debug)]
struct OsFile(File);

impl VfsFile for OsFile {
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        self.0.read_exact_at(buf, offset)
    }

    fn append_all(&mut self, buf: &[u8]) -> io::Result<()> {
        io::Write::write_all(&mut self.0, buf)
    }

    fn sync_all(&self) -> io::Result<()> {
        self.0.sync_all()
    }

    fn len(&self) -> io::Result<u64> {
        Ok(self.0.metadata()?.len())
    }

    fn mmap(&self) -> io::Result<Option<Mmap>> {
        Mmap::map(&self.0)
    }
}

impl Vfs for OsVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(OsFile(File::create(path)?)))
    }

    fn open(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(OsFile(File::open(path)?)))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        File::open(path)?.sync_all()
    }
}

// ---------------------------------------------------------------------------
// Fault injection.

/// The operation classes a [`FaultRule`] can target. Each class keeps
/// its own monotonically increasing index across the whole
/// [`FaultyVfs`], so "the Nth write" is well-defined regardless of which
/// file performs it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// `Vfs::create`.
    Create,
    /// `Vfs::open`.
    Open,
    /// `VfsFile::read_exact_at`.
    Read,
    /// `VfsFile::append_all`.
    Write,
    /// `VfsFile::sync_all`.
    Sync,
    /// `Vfs::rename`.
    Rename,
    /// `Vfs::remove_file`.
    Remove,
    /// `Vfs::sync_dir`.
    SyncDir,
    /// `VfsFile::mmap`.
    Mmap,
}

const N_OPS: usize = 9;

impl FaultOp {
    fn index(self) -> usize {
        match self {
            FaultOp::Create => 0,
            FaultOp::Open => 1,
            FaultOp::Read => 2,
            FaultOp::Write => 3,
            FaultOp::Sync => 4,
            FaultOp::Rename => 5,
            FaultOp::Remove => 6,
            FaultOp::SyncDir => 7,
            FaultOp::Mmap => 8,
        }
    }
}

/// What happens when a rule fires.
#[derive(Debug, Clone)]
pub enum FaultKind {
    /// Fail outright with this error kind (e.g. `StorageFull` for
    /// ENOSPC, `Other` for EIO). Fires once.
    Fail(io::ErrorKind),
    /// EINTR-style transient failure: the operation fails `failures`
    /// consecutive times with `kind`, then succeeds — the shape a
    /// bounded-retry reader must survive.
    Transient {
        /// How many consecutive attempts fail before success.
        failures: u32,
        /// The error kind each failing attempt reports.
        kind: io::ErrorKind,
    },
    /// Torn write: only the first `keep` bytes of the buffer reach the
    /// inner file, then the write reports an I/O error — the on-disk
    /// state a power cut mid-write leaves. Fires once.
    TornWrite {
        /// Bytes of the buffer that persist before the failure.
        keep: usize,
    },
    /// Short read: only the first `keep` bytes are filled, then the
    /// read reports `UnexpectedEof`. Fires once.
    ShortRead {
        /// Bytes delivered before the premature EOF.
        keep: usize,
    },
}

/// One scripted fault: when the `nth` operation of class `op` (0-based,
/// counted across the whole [`FaultyVfs`]) arrives, `kind` happens.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// Which operation class this rule watches.
    pub op: FaultOp,
    /// The 0-based operation index at which the rule arms.
    pub nth: u64,
    /// The injected behavior.
    pub kind: FaultKind,
}

/// A rule plus its remaining-fire budget ([`FaultKind::Transient`] fires
/// multiple times; everything else once).
#[derive(Debug)]
struct Armed {
    rule: FaultRule,
    remaining: u32,
}

#[derive(Debug, Default)]
struct FaultState {
    rules: Mutex<Vec<Armed>>,
    /// Absolute-file-offset byte corruptions applied to every read that
    /// covers them (models bit rot under a live reader).
    flips: Mutex<Vec<(u64, u8)>>,
    counts: [AtomicU64; N_OPS],
}

impl FaultState {
    /// Claims the next index for `op` and returns the fault to inject,
    /// if a rule fires at it.
    fn tick(&self, op: FaultOp) -> Option<FaultKind> {
        let idx = self.counts[op.index()].fetch_add(1, Ordering::Relaxed);
        let mut rules = self.rules.lock().expect("fault rules poisoned");
        for armed in rules.iter_mut() {
            if armed.rule.op == op && idx >= armed.rule.nth && armed.remaining > 0 {
                armed.remaining -= 1;
                return Some(armed.rule.kind.clone());
            }
        }
        None
    }

    fn err(kind: io::ErrorKind, what: &str) -> io::Error {
        io::Error::new(kind, format!("injected fault: {what}"))
    }
}

/// A [`Vfs`] wrapper that injects scripted, deterministic storage faults
/// — see the module docs. Clones share the same fault plan and
/// operation counters, so a test can keep a handle for assertions while
/// the code under test owns another.
///
/// Files opened through a `FaultyVfs` never memory-map by default
/// (`mmap` reports "unsupported" unless a [`FaultOp::Mmap`] rule makes
/// it fail outright): every read funnels through `read_exact_at`, where
/// read faults and bit flips apply.
#[derive(Clone)]
pub struct FaultyVfs {
    inner: Arc<dyn Vfs>,
    state: Arc<FaultState>,
}

impl std::fmt::Debug for FaultyVfs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyVfs").finish_non_exhaustive()
    }
}

impl FaultyVfs {
    /// Wraps `inner` with an (initially empty) fault plan.
    pub fn new(inner: impl Vfs + 'static) -> Self {
        Self {
            inner: Arc::new(inner),
            state: Arc::new(FaultState::default()),
        }
    }

    /// Wraps the real filesystem.
    pub fn os() -> Self {
        Self::new(OsVfs)
    }

    /// Wraps `inner` with a pre-scripted plan.
    pub fn scripted(inner: impl Vfs + 'static, plan: Vec<FaultRule>) -> Self {
        let vfs = Self::new(inner);
        for rule in plan {
            vfs.arm(rule);
        }
        vfs
    }

    /// Adds a rule to the plan.
    pub fn arm(&self, rule: FaultRule) {
        let remaining = match rule.kind {
            FaultKind::Transient { failures, .. } => failures,
            _ => 1,
        };
        self.state
            .rules
            .lock()
            .expect("fault rules poisoned")
            .push(Armed { rule, remaining });
    }

    /// Fails the `nth` operation of class `op` with `kind`.
    pub fn fail_nth(&self, op: FaultOp, nth: u64, kind: io::ErrorKind) {
        self.arm(FaultRule {
            op,
            nth,
            kind: FaultKind::Fail(kind),
        });
    }

    /// Makes reads starting at the `nth` fail `failures` times with
    /// `Interrupted`, then succeed.
    pub fn transient_reads(&self, nth: u64, failures: u32) {
        self.arm(FaultRule {
            op: FaultOp::Read,
            nth,
            kind: FaultKind::Transient {
                failures,
                kind: io::ErrorKind::Interrupted,
            },
        });
    }

    /// Tears the `nth` write after `keep` bytes.
    pub fn torn_write(&self, nth: u64, keep: usize) {
        self.arm(FaultRule {
            op: FaultOp::Write,
            nth,
            kind: FaultKind::TornWrite { keep },
        });
    }

    /// Short-reads the `nth` read after `keep` bytes.
    pub fn short_read(&self, nth: u64, keep: usize) {
        self.arm(FaultRule {
            op: FaultOp::Read,
            nth,
            kind: FaultKind::ShortRead { keep },
        });
    }

    /// XORs `mask` into the byte at absolute file offset `offset` of
    /// every positional read that covers it (bit rot as seen by the
    /// reader; the file itself is untouched).
    pub fn flip_byte(&self, offset: u64, mask: u8) {
        self.state
            .flips
            .lock()
            .expect("fault flips poisoned")
            .push((offset, mask));
    }

    /// Drops all rules and flips (operation counters keep running).
    pub fn clear(&self) {
        self.state
            .rules
            .lock()
            .expect("fault rules poisoned")
            .clear();
        self.state
            .flips
            .lock()
            .expect("fault flips poisoned")
            .clear();
    }

    /// How many operations of class `op` have been issued so far — the
    /// handle a crash-point sweep uses to enumerate every boundary.
    pub fn op_count(&self, op: FaultOp) -> u64 {
        self.state.counts[op.index()].load(Ordering::Relaxed)
    }

    fn guard(&self, op: FaultOp, what: &str) -> io::Result<()> {
        match self.state.tick(op) {
            None => Ok(()),
            Some(FaultKind::Fail(kind)) | Some(FaultKind::Transient { kind, .. }) => {
                Err(FaultState::err(kind, what))
            }
            // Torn/short kinds degenerate to hard failures on operations
            // that carry no buffer to tear.
            Some(FaultKind::TornWrite { .. }) | Some(FaultKind::ShortRead { .. }) => {
                Err(FaultState::err(io::ErrorKind::Other, what))
            }
        }
    }
}

impl Vfs for FaultyVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.guard(FaultOp::Create, "create")?;
        let inner = self.inner.create(path)?;
        Ok(Box::new(FaultyFile {
            inner,
            state: Arc::clone(&self.state),
        }))
    }

    fn open(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.guard(FaultOp::Open, "open")?;
        let inner = self.inner.open(path)?;
        Ok(Box::new(FaultyFile {
            inner,
            state: Arc::clone(&self.state),
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.guard(FaultOp::Rename, "rename")?;
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.guard(FaultOp::Remove, "remove")?;
        self.inner.remove_file(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        self.guard(FaultOp::SyncDir, "sync_dir")?;
        self.inner.sync_dir(path)
    }
}

/// A file whose operations consult the shared fault plan.
#[derive(Debug)]
struct FaultyFile {
    inner: Box<dyn VfsFile>,
    state: Arc<FaultState>,
}

impl VfsFile for FaultyFile {
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        match self.state.tick(FaultOp::Read) {
            None => {}
            Some(FaultKind::Fail(kind)) | Some(FaultKind::Transient { kind, .. }) => {
                return Err(FaultState::err(kind, "read"));
            }
            Some(FaultKind::ShortRead { keep }) => {
                let keep = keep.min(buf.len());
                self.inner.read_exact_at(&mut buf[..keep], offset)?;
                return Err(FaultState::err(io::ErrorKind::UnexpectedEof, "short read"));
            }
            Some(FaultKind::TornWrite { .. }) => {
                return Err(FaultState::err(io::ErrorKind::Other, "read"));
            }
        }
        self.inner.read_exact_at(buf, offset)?;
        let flips = self.state.flips.lock().expect("fault flips poisoned");
        for &(at, mask) in flips.iter() {
            if at >= offset {
                if let Ok(i) = usize::try_from(at - offset) {
                    if i < buf.len() {
                        buf[i] ^= mask;
                    }
                }
            }
        }
        Ok(())
    }

    fn append_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self.state.tick(FaultOp::Write) {
            None => {}
            Some(FaultKind::Fail(kind)) | Some(FaultKind::Transient { kind, .. }) => {
                return Err(FaultState::err(kind, "write"));
            }
            Some(FaultKind::TornWrite { keep }) => {
                let keep = keep.min(buf.len());
                self.inner.append_all(&buf[..keep])?;
                return Err(FaultState::err(io::ErrorKind::Other, "torn write"));
            }
            Some(FaultKind::ShortRead { .. }) => {
                return Err(FaultState::err(io::ErrorKind::Other, "write"));
            }
        }
        self.inner.append_all(buf)
    }

    fn sync_all(&self) -> io::Result<()> {
        match self.state.tick(FaultOp::Sync) {
            None => self.inner.sync_all(),
            Some(FaultKind::Fail(kind)) | Some(FaultKind::Transient { kind, .. }) => {
                Err(FaultState::err(kind, "sync"))
            }
            Some(_) => Err(FaultState::err(io::ErrorKind::Other, "sync")),
        }
    }

    fn len(&self) -> io::Result<u64> {
        self.inner.len()
    }

    fn mmap(&self) -> io::Result<Option<Mmap>> {
        match self.state.tick(FaultOp::Mmap) {
            // No rule: report "unsupported" so every subsequent read goes
            // through the faultable positional path.
            None => Ok(None),
            Some(FaultKind::Fail(kind)) | Some(FaultKind::Transient { kind, .. }) => {
                Err(FaultState::err(kind, "mmap"))
            }
            Some(_) => Err(FaultState::err(io::ErrorKind::Other, "mmap")),
        }
    }
}

/// Derives a reproducible bit-rot pattern from a seed: `n` byte flips at
/// distinct offsets in `[lo, hi)`, usable with [`FaultyVfs::flip_byte`]
/// or applied directly to a byte buffer. Masks are never zero.
pub fn seeded_bit_rot(seed: u64, lo: u64, hi: u64, n: usize) -> Vec<(u64, u8)> {
    assert!(lo < hi, "empty corruption range [{lo}, {hi})");
    let span = hi - lo;
    let n = n.min(usize::try_from(span).unwrap_or(usize::MAX));
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut out: Vec<(u64, u8)> = Vec::with_capacity(n);
    while out.len() < n {
        let offset = lo + rng.below(span);
        if out.iter().any(|&(o, _)| o == offset) {
            continue;
        }
        let mask = 1u8 << rng.below(8);
        out.push((offset, mask));
    }
    out
}

// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("blazr-util-vfs");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn os_vfs_roundtrips_and_renames() {
        let vfs = OsVfs;
        let a = tmp("a.bin");
        let b = tmp("b.bin");
        let mut f = vfs.create(&a).unwrap();
        f.append_all(b"hello ").unwrap();
        f.append_all(b"world").unwrap();
        f.sync_all().unwrap();
        assert_eq!(f.len().unwrap(), 11);
        drop(f);
        vfs.rename(&a, &b).unwrap();
        vfs.sync_dir(b.parent().unwrap()).unwrap();
        let f = vfs.open(&b).unwrap();
        let mut buf = [0u8; 5];
        f.read_exact_at(&mut buf, 6).unwrap();
        assert_eq!(&buf, b"world");
        vfs.remove_file(&b).unwrap();
        assert!(vfs.open(&b).is_err());
    }

    #[test]
    fn nth_write_fails_and_prefix_persists() {
        let vfs = FaultyVfs::os();
        vfs.fail_nth(FaultOp::Write, 2, io::ErrorKind::StorageFull);
        let p = tmp("enospc.bin");
        let mut f = vfs.create(&p).unwrap();
        f.append_all(b"one").unwrap();
        f.append_all(b"two").unwrap();
        let err = f.append_all(b"three").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        drop(f);
        assert_eq!(std::fs::read(&p).unwrap(), b"onetwo");
        assert_eq!(vfs.op_count(FaultOp::Write), 3);
    }

    #[test]
    fn torn_write_persists_exactly_keep_bytes() {
        let vfs = FaultyVfs::os();
        vfs.torn_write(1, 2);
        let p = tmp("torn.bin");
        let mut f = vfs.create(&p).unwrap();
        f.append_all(b"head").unwrap();
        assert!(f.append_all(b"tail").is_err());
        // Later writes succeed again (the rule fired once).
        f.append_all(b"rest").unwrap();
        drop(f);
        assert_eq!(std::fs::read(&p).unwrap(), b"headtarest");
    }

    #[test]
    fn transient_reads_recover_after_retries() {
        let vfs = FaultyVfs::os();
        let p = tmp("transient.bin");
        std::fs::write(&p, b"0123456789").unwrap();
        vfs.transient_reads(0, 2);
        let f = vfs.open(&p).unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(
            f.read_exact_at(&mut buf, 3).unwrap_err().kind(),
            io::ErrorKind::Interrupted
        );
        assert_eq!(
            f.read_exact_at(&mut buf, 3).unwrap_err().kind(),
            io::ErrorKind::Interrupted
        );
        f.read_exact_at(&mut buf, 3).unwrap();
        assert_eq!(&buf, b"3456");
    }

    #[test]
    fn short_read_delivers_prefix_then_eof() {
        let vfs = FaultyVfs::os();
        let p = tmp("short.bin");
        std::fs::write(&p, b"abcdef").unwrap();
        vfs.short_read(0, 3);
        let f = vfs.open(&p).unwrap();
        let mut buf = [0u8; 6];
        let err = f.read_exact_at(&mut buf, 0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert_eq!(&buf[..3], b"abc");
    }

    #[test]
    fn bit_flips_corrupt_reads_not_the_file() {
        let vfs = FaultyVfs::os();
        let p = tmp("flip.bin");
        std::fs::write(&p, vec![0u8; 16]).unwrap();
        vfs.flip_byte(5, 0x80);
        let f = vfs.open(&p).unwrap();
        let mut buf = [0u8; 16];
        f.read_exact_at(&mut buf, 0).unwrap();
        assert_eq!(buf[5], 0x80);
        // A read that does not cover the offset is untouched.
        let mut tail = [0u8; 8];
        f.read_exact_at(&mut tail, 8).unwrap();
        assert!(tail.iter().all(|&b| b == 0));
        // The on-disk bytes were never modified.
        assert!(std::fs::read(&p).unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn mmap_is_unsupported_by_default_and_failable_by_rule() {
        let vfs = FaultyVfs::os();
        let p = tmp("map.bin");
        std::fs::write(&p, b"bytes").unwrap();
        let f = vfs.open(&p).unwrap();
        assert!(f.mmap().unwrap().is_none());
        vfs.fail_nth(FaultOp::Mmap, 1, io::ErrorKind::Other);
        assert!(f.mmap().is_err());
    }

    #[test]
    fn seeded_bit_rot_is_reproducible_and_in_range() {
        let a = seeded_bit_rot(7, 100, 200, 16);
        let b = seeded_bit_rot(7, 100, 200, 16);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        for &(offset, mask) in &a {
            assert!((100..200).contains(&offset));
            assert_ne!(mask, 0);
        }
        let c = seeded_bit_rot(8, 100, 200, 16);
        assert_ne!(a, c, "different seeds, different patterns");
    }
}
