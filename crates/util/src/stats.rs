//! Scalar statistics helpers used by tests and the benchmark harness.

/// Online mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for long streams; used by the harness to summarize
/// timing samples and by tests to check error distributions.
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than one observation).
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (+inf if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (−inf if empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Maximum absolute difference between paired slices.
///
/// Panics if lengths differ.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Root-mean-square difference between paired slices.
pub fn rms_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    let ss: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (ss / a.len() as f64).sqrt()
}

/// Relative error |a−b| / max(|b|, floor). Returns the absolute error when
/// the reference magnitude is below `floor` to avoid division blow-up.
pub fn relative_error(approx: f64, reference: f64, floor: f64) -> f64 {
    let denom = reference.abs().max(floor);
    if denom == 0.0 {
        (approx - reference).abs()
    } else {
        (approx - reference).abs() / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [1.0, 2.0, 3.5, -1.0, 0.25, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
        assert!((w.mean() - m).abs() < 1e-12);
        assert!((w.variance() - v).abs() < 1e-12);
        assert_eq!(w.count(), xs.len() as u64);
        assert_eq!(w.min(), -1.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn welford_empty_is_sane() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.count(), 0);
    }

    #[test]
    fn max_abs_diff_finds_peak() {
        assert_eq!(max_abs_diff(&[1.0, 2.0, 3.0], &[1.0, 5.0, 2.0]), 3.0);
    }

    #[test]
    fn rms_diff_of_identical_is_zero() {
        let xs = [0.5, -0.25, 7.0];
        assert_eq!(rms_diff(&xs, &xs), 0.0);
    }

    #[test]
    fn relative_error_uses_floor() {
        assert_eq!(relative_error(1.5, 1.0, 1e-9), 0.5);
        // Reference near zero: falls back toward absolute via floor.
        let e = relative_error(1e-3, 0.0, 1e-3);
        assert!((e - 1.0).abs() < 1e-12);
    }
}
