//! The §IV-D error analysis in practice: compress with a report, compare
//! the measured coefficient errors and decompression errors against every
//! bound the paper states (and the tighter one this implementation adds).
//!
//! Run with: `cargo run --release --example error_bounds`

use blazr::{compress_with_report, PruningMask, Settings};
use blazr_tensor::{reduce, NdArray};
use blazr_util::rng::Xoshiro256pp;

fn main() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xE44);
    let a = NdArray::from_fn(vec![64, 64], |_| rng.uniform_in(-1.0, 1.0));

    for (label, settings) in [
        ("int8, no pruning", Settings::new(vec![8, 8]).unwrap()),
        (
            "int8, keep 4×4 low-frequency box",
            Settings::new(vec![8, 8])
                .unwrap()
                .with_mask(PruningMask::keep_low_frequency_box(&[8, 8], &[4, 4]).unwrap())
                .unwrap(),
        ),
    ] {
        println!("=== {label} ===");
        let (c, report) = compress_with_report::<f64, i8>(&a, &settings).unwrap();
        let d = c.decompress();
        let err = a.sub(&d);
        let actual_linf = reduce::norm_linf(&err);
        let actual_l2 = reduce::norm_l2(&err);

        println!("  compression ratio        : {:.2}×", c.compression_ratio());
        println!("  actual L∞ element error  : {actual_linf:.4e}");
        println!(
            "  our L∞ bound (Σ|Δc|)     : {:.4e}  ({}× actual)",
            report.linf_bound(),
            (report.linf_bound() / actual_linf).round()
        );
        println!(
            "  paper's loose L∞ bound   : {:.4e}  ({:.0}× actual)",
            report.paper_loose_linf_bound(),
            report.paper_loose_linf_bound() / actual_linf
        );
        println!("  actual L2 error          : {actual_l2:.4e}");
        println!(
            "  coefficient-space L2     : {:.4e}  (orthonormality makes these equal)",
            report.total_coeff_l2
        );
        let max_bin_bound = report
            .binning_bound_per_block
            .iter()
            .cloned()
            .fold(0.0, f64::max);
        let max_coeff_err = report
            .per_block_coeff_linf
            .iter()
            .cloned()
            .fold(0.0, f64::max);
        println!(
            "  worst per-coeff error    : {max_coeff_err:.4e} vs binning bound N/(2r) = {max_bin_bound:.4e}"
        );
        assert!(actual_linf <= report.linf_bound() * (1.0 + 1e-9));
        assert!((actual_l2 - report.total_coeff_l2).abs() < 1e-9 * (1.0 + actual_l2));
        println!("  all bounds hold ✓\n");
    }
}
