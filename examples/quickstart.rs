//! Quickstart: compress an array, operate on it without decompressing,
//! check the error, and serialize it.
//!
//! Run with: `cargo run --release --example quickstart`

use blazr::ops::SsimParams;
use blazr::{compress, compress_with_report, CompressedArray, Settings};
use blazr_tensor::{reduce, NdArray};

fn main() {
    // A smooth 2-D field, the kind of data lossy compressors love.
    let shape = vec![128, 128];
    let a = NdArray::from_fn(shape.clone(), |i| {
        ((i[0] as f64) / 12.0).sin() * ((i[1] as f64) / 17.0).cos()
    });
    let b = NdArray::from_fn(shape.clone(), |i| {
        ((i[0] as f64) / 9.0).cos() + 0.1 * (i[1] as f64 / 30.0)
    });

    // Settings: 8×8 blocks, DCT, no pruning. The float format (f32) and
    // bin index type (i16) are chosen at the type level.
    let settings = Settings::new(vec![8, 8]).unwrap();
    let ca: CompressedArray<f32, i16> = compress(&a, &settings).unwrap();
    let cb: CompressedArray<f32, i16> = compress(&b, &settings).unwrap();

    println!("compression ratio (vs f64): {:.2}×", ca.compression_ratio());
    println!("serialized size: {} bytes", ca.to_bytes().len());

    // Operate directly on the compressed representations.
    println!("\ncompressed-space results vs uncompressed references:");
    println!(
        "  mean       {:>12.6}  (ref {:>12.6})",
        ca.mean().unwrap(),
        reduce::mean(&a)
    );
    println!(
        "  variance   {:>12.6}  (ref {:>12.6})",
        ca.variance().unwrap(),
        reduce::variance(&a)
    );
    println!(
        "  L2 norm    {:>12.6}  (ref {:>12.6})",
        ca.l2_norm(),
        reduce::norm_l2(&a)
    );
    println!(
        "  dot(a,b)   {:>12.6}  (ref {:>12.6})",
        ca.dot(&cb).unwrap(),
        reduce::dot(&a, &b)
    );
    println!(
        "  cosine     {:>12.6}  (ref {:>12.6})",
        ca.cosine_similarity(&cb).unwrap(),
        reduce::cosine_similarity(&a, &b)
    );
    println!(
        "  SSIM       {:>12.6}  (ref {:>12.6})",
        ca.ssim(&cb, &SsimParams::default()).unwrap(),
        reduce::ssim(&a, &b, &SsimParams::default())
    );

    // Array-valued operations: the difference of two fields, computed
    // entirely in compressed space (negation + addition).
    let diff = ca.sub(&cb).unwrap();
    println!(
        "\n‖a − b‖₂ via compressed subtraction: {:.6} (ref {:.6})",
        diff.l2_norm(),
        reduce::norm_l2(&a.sub(&b))
    );

    // Error accounting: bounds from §IV-D, verified against the actual
    // decompression error.
    let (c2, report) = compress_with_report::<f32, i16>(&a, &settings).unwrap();
    let d = c2.decompress();
    let actual_linf = blazr_util::stats::max_abs_diff(a.as_slice(), d.as_slice());
    println!("\nerror report:");
    println!(
        "  L∞ bound {:.3e}, actual L∞ {actual_linf:.3e}",
        report.linf_bound()
    );
    println!(
        "  L2 (coefficient-space) {:.3e}, actual L2 {:.3e}",
        report.total_coeff_l2,
        reduce::norm_l2(&a.sub(&d))
    );

    // Serialization round-trip.
    let bytes = ca.to_bytes();
    let back = CompressedArray::<f32, i16>::from_bytes(&bytes).unwrap();
    assert_eq!(back, ca);
    println!("\nserialization round-trip OK ({} bytes)", bytes.len());
}
