//! Statistics on compressed MRI volumes (§V-B): compute mean, variance,
//! L2 norm on compressed FLAIR-like volumes and SSIM between compressed
//! pairs, across two compression settings, without decompressing.
//!
//! Run with: `cargo run --release --example mri_statistics`

use blazr::dynamic::compress_dyn;
use blazr::ops::SsimParams;
use blazr::{IndexType, ScalarType, Settings};
use blazr_datasets::mri::MriDataset;
use blazr_tensor::{reduce, NdArray};

fn main() {
    let ds = MriDataset::small(11, 4, 64);
    println!(
        "generating {} FLAIR-like volumes (64×64 slices)…",
        ds.volumes
    );
    let volumes: Vec<NdArray<f64>> = (0..ds.volumes).map(|i| ds.volume(i)).collect();
    for (i, v) in volumes.iter().enumerate() {
        println!(
            "  volume {i}: shape {:?}, mean {:.4}, std {:.4}",
            v.shape(),
            reduce::mean(v),
            reduce::std_dev(v)
        );
    }

    for (ft, it, bs) in [
        (ScalarType::F32, IndexType::I16, vec![4usize, 4, 4]),
        (ScalarType::F32, IndexType::I8, vec![4, 16, 16]),
    ] {
        let settings = Settings::new(bs.clone()).unwrap();
        println!(
            "\nsettings: {} scales, {} indices, {:?} blocks",
            ft.name(),
            it.name(),
            bs
        );
        for (i, v) in volumes.iter().enumerate() {
            let c = compress_dyn(v, &settings, ft, it).unwrap();
            println!(
                "  vol {i}: ratio {:>5.2}×  mean {:.5} (ref {:.5})  var {:.6} (ref {:.6})  ‖·‖₂ {:.3} (ref {:.3})",
                c.compression_ratio(),
                c.mean().unwrap(),
                reduce::mean(v),
                c.variance().unwrap(),
                reduce::variance(v),
                c.l2_norm(),
                reduce::norm_l2(v),
            );
        }
        // SSIM between the first same-depth-cropped pair.
        let d = volumes[0].shape()[0].min(volumes[1].shape()[0]);
        let crop = |v: &NdArray<f64>| {
            NdArray::from_fn(vec![d, v.shape()[1], v.shape()[2]], |idx| v.get(idx))
        };
        let (va, vb) = (crop(&volumes[0]), crop(&volumes[1]));
        let ca = compress_dyn(&va, &settings, ft, it).unwrap();
        let cb = compress_dyn(&vb, &settings, ft, it).unwrap();
        println!(
            "  SSIM(vol0, vol1) = {:.4} compressed vs {:.4} uncompressed",
            ca.ssim(&cb, &SsimParams::default()).unwrap(),
            reduce::ssim(&va, &vb, &SsimParams::default())
        );
    }
}
