//! Scission detection in nuclear fission data (§V-C): compress each time
//! step of a plutonium-density series, then locate the step at which the
//! nucleus splits using compressed-space L2 differences and the
//! approximate Wasserstein distance — showing why one metric beats the
//! other in the presence of noise.
//!
//! Run with: `cargo run --release --example fission_scission`

use blazr::{compress, CompressedArray, Settings};
use blazr_datasets::fission::{series, FissionConfig, SCISSION_BETWEEN};

fn main() {
    println!("generating synthetic plutonium neutron densities (40×40×66, 15 steps)…");
    let data = series(&FissionConfig::default());
    // Paper settings: 16×16×16 blocks, int16 indices, FP32 scales.
    let settings = Settings::new(vec![16, 16, 16]).unwrap();
    let compressed: Vec<(usize, CompressedArray<f32, i16>)> = data
        .iter()
        .map(|(t, a)| (*t, compress(a, &settings).unwrap()))
        .collect();
    println!(
        "compressed each step {:.1}× (vs f64)",
        compressed[0].1.compression_ratio()
    );

    // L2 differences: finds the scission but with distracting side peaks.
    println!("\nadjacent-step L2 differences (compressed space):");
    let mut l2: Vec<((usize, usize), f64)> = Vec::new();
    for w in compressed.windows(2) {
        let (t1, ref a) = w[0];
        let (t2, ref b) = w[1];
        let d = a.sub(b).unwrap().l2_norm() as f64;
        l2.push(((t1, t2), d));
    }
    let max_l2 = l2.iter().map(|&(_, d)| d).fold(0.0, f64::max);
    for &((t1, t2), d) in &l2 {
        let bar = "#".repeat((d / max_l2 * 50.0).round() as usize);
        println!("  {t1:>3}→{t2:<3} {d:>10.2} {bar}");
    }

    // Wasserstein at increasing order: side peaks melt away.
    for p in [2.0, 16.0, 68.0] {
        println!("\nWasserstein distance, p = {p}:");
        let mut ws = Vec::new();
        for w in compressed.windows(2) {
            let (t1, ref a) = w[0];
            let (t2, ref b) = w[1];
            ws.push(((t1, t2), a.wasserstein(b, p).unwrap()));
        }
        let max_w = ws.iter().map(|&(_, d)| d).fold(0.0, f64::max);
        for &((t1, t2), d) in &ws {
            let bar = "#".repeat((d / max_w * 50.0).round() as usize);
            println!("  {t1:>3}→{t2:<3} {d:>10.3e} {bar}");
        }
    }

    let (peak_pair, _) = l2
        .iter()
        .cloned()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    println!(
        "\ndetected scission between steps {} and {} (ground truth: {} and {})",
        peak_pair.0, peak_pair.1, SCISSION_BETWEEN.0, SCISSION_BETWEEN.1
    );
}
