//! The paper's introductory use case (§I): run a shallow-water simulation
//! at two working precisions ("two movies"), keep every snapshot
//! *compressed*, and find the time at which the two time series deviate
//! beyond a threshold — using compressed-space L2 distance (whole-surface
//! view) and the approximate Wasserstein distance (distribution view),
//! without ever decompressing the archive.
//!
//! Run with: `cargo run --release --example shallow_water_divergence`

use blazr::{compress, CompressedArray, Settings};
use blazr_datasets::shallow_water::{ShallowWater, SwConfig};
use blazr_precision::F16;

/// One archived step: (simulation step, FP16 movie frame, FP32 movie frame).
type Snapshot = (usize, CompressedArray<f32, i16>, CompressedArray<f32, i16>);

fn main() {
    let cfg = SwConfig {
        nx: 48,
        ny: 96,
        ..SwConfig::default()
    };
    let settings = Settings::new(vec![16, 16]).unwrap();
    let snapshot_every = 50;
    let snapshots = 40;

    println!("running FP16 and FP32 simulations, archiving compressed snapshots…");
    let mut lo = ShallowWater::<F16>::new(cfg.clone());
    let mut hi = ShallowWater::<f32>::new(cfg);
    // The archive holds only compressed arrays — this is the workflow the
    // paper motivates: time series stay compressed, analysis happens in
    // compressed space.
    let mut archive: Vec<Snapshot> = Vec::new();
    for s in 1..=snapshots {
        lo.run(snapshot_every);
        hi.run(snapshot_every);
        let step = s * snapshot_every;
        let c16 = compress(&lo.surface_height(), &settings).unwrap();
        let c32 = compress(&hi.surface_height(), &settings).unwrap();
        archive.push((step, c16, c32));
    }
    let stored: usize = archive
        .iter()
        .map(|(_, a, b)| (a.payload_bits() + b.payload_bits()) as usize / 8)
        .sum();
    let raw = snapshots * 2 * 48 * 96 * 8;
    println!(
        "archive: {} snapshots, {:.1} KiB compressed (raw would be {:.1} KiB, {:.1}×)",
        snapshots,
        stored as f64 / 1024.0,
        raw as f64 / 1024.0,
        raw as f64 / stored as f64
    );

    println!(
        "\n{:>6} {:>14} {:>16}",
        "step", "L2 distance", "Wasserstein p=2"
    );
    let mut divergence_step = None;
    // Threshold: relative to the field magnitude at each step.
    for (step, c16, c32) in &archive {
        let l2 = c32.sub(c16).unwrap().l2_norm() as f64;
        let scale = c32.l2_norm() as f64;
        let w2 = c32.wasserstein(c16, 2.0).unwrap();
        let rel = l2 / scale.max(1e-30);
        println!("{step:>6} {l2:>14.5} {w2:>16.3e}   (relative {rel:.3})");
        if divergence_step.is_none() && rel > 0.05 {
            divergence_step = Some(*step);
        }
    }
    match divergence_step {
        Some(s) => println!(
            "\nthe FP16 movie deviates beyond 5% of the field norm at step {s} — \
             detected without decompressing a single snapshot"
        ),
        None => println!("\nno deviation beyond 5% within this horizon"),
    }
}
