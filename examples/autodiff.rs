//! Differentiation through the compressed pipeline (the paper's §IV claim
//! that all operations except the approximate Wasserstein distance are
//! differentiable, "enabling incorporation into gradient-based
//! optimization pipelines").
//!
//! This example runs a tiny gradient-descent loop *on compressed data*:
//! we seek a scalar shift `t` such that the compressed mean of `A + t`
//! matches a target, using forward-mode dual numbers to get d(mean)/dt
//! from the compressed representation itself.
//!
//! Run with: `cargo run --release --example autodiff`

use blazr::{compress_values, Dual, Settings};
use blazr_tensor::NdArray;
use blazr_util::rng::Xoshiro256pp;

fn main() {
    let mut rng = Xoshiro256pp::seed_from_u64(42);
    // Positive-valued data: each block's dominant coefficient is then the
    // DC term, which is exactly where a constant-shift perturbation acts.
    // (Like autograd on PyBlaz, gradients flow through the per-block
    // scales N = max|coefficient| — straight-through estimation — so the
    // perturbation direction must load on the dominant coefficients to be
    // visible. See tests/differentiability.rs for bias measurements.)
    let base = NdArray::from_fn(vec![32, 32], |_| rng.uniform_in(2.0, 3.0));
    let settings = Settings::new(vec![8, 8]).unwrap();
    let target_mean = 3.25;

    // Optimize t so that mean(compress(base + t)) == target.
    let mut t = 0.0f64;
    println!("optimizing shift t so the *compressed* mean hits {target_mean}");
    println!(
        "{:>4} {:>12} {:>12} {:>12}",
        "iter", "t", "mean", "d(loss)/dt"
    );
    for iter in 0..12 {
        // Seed d/dt: every element is base + t, so ∂element/∂t = 1.
        let dual_input = base.map(|x| Dual::with_deriv(x + t, 1.0));
        let c = compress_values::<Dual, i16>(&dual_input, &settings).unwrap();
        let mean = c.mean().unwrap();
        let loss = (mean.value - target_mean) * (mean.value - target_mean);
        let dloss_dt = 2.0 * (mean.value - target_mean) * mean.deriv;
        println!("{iter:>4} {t:>12.6} {:>12.6} {dloss_dt:>12.3e}", mean.value);
        if loss < 1e-14 {
            break;
        }
        // Newton-ish step (the problem is quadratic in t).
        t -= 0.5 * dloss_dt / (mean.deriv * mean.deriv).max(1e-12);
    }
    println!("\nconverged: t = {t:.6}");

    // Show a richer gradient: d‖A+t‖₂/dt through the codec vs analytic.
    let dual_input = base.map(|x| Dual::with_deriv(x + t, 1.0));
    let c = compress_values::<Dual, i16>(&dual_input, &settings).unwrap();
    let norm = c.l2_norm();
    let shifted = base.add_scalar(t);
    let analytic = blazr_tensor::reduce::sum(&shifted) / blazr_tensor::reduce::norm_l2(&shifted);
    let bias = (norm.deriv - analytic).abs() / analytic.abs().max(1.0);
    println!(
        "d‖A+t‖₂/dt: {:.4} through the compressed pipeline, {analytic:.4} analytic \
         ({:.1}% straight-through bias)",
        norm.deriv,
        bias * 100.0
    );
    // The binning step is treated straight-through (gradients flow only
    // through the per-block scales N), so the estimate is biased — the
    // same trade-off PyTorch autograd makes for PyBlaz. It must still
    // point the right way and be in the right ballpark.
    assert!(norm.deriv * analytic > 0.0, "gradient direction must agree");
    assert!(bias < 0.5, "bias {bias} out of expected range");
    println!("gradient direction and magnitude agree ✓");
}
