//! The chunked store end to end: ingest a simulated time series into a
//! single-file store, query it with zone-map pruning, and run the
//! paper's §VI divergence analysis against on-disk data.
//!
//! Run with: `cargo run --release --example store_query`

use blazr::{IndexType, ScalarType, Settings};
use blazr_store::{Aggregate, Predicate, Query, Store, StoreWriter};
use blazr_tensor::NdArray;

/// A smooth field that heats up over time; the "event" after step 11
/// gives range queries something to find.
fn snapshot(t: u64, hot: bool) -> NdArray<f64> {
    NdArray::from_fn(vec![32, 32], |i| {
        let base = ((i[0] as f64) / 6.0).sin() * ((i[1] as f64) / 9.0).cos();
        let heat = t as f64 * 0.5;
        if hot && i[0] < 8 {
            base + heat + 4.0
        } else {
            base + heat
        }
    })
}

fn main() {
    let dir = std::env::temp_dir().join("blazr-store-example");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run_a.blzs");

    // Ingest: every snapshot is compressed on the way in; the writer
    // keeps per-chunk zone maps (computed in compressed space) and lands
    // them in the checksummed index footer.
    let settings = Settings::new(vec![8, 8]).unwrap();
    let mut w =
        StoreWriter::create(&path, settings.clone(), ScalarType::F32, IndexType::I16).unwrap();
    for t in 0..16u64 {
        w.append(t, &snapshot(t, t >= 12)).unwrap();
    }
    w.finish().unwrap();

    let store = Store::open(&path).unwrap();
    println!(
        "store: {} chunks, {} payload bytes ({} file bytes)",
        store.len(),
        store.payload_bytes(),
        store.file_bytes()
    );

    // Query: "what is the mean where values reach [8, 11]?" — the zone
    // maps prune every cool early chunk from the footer alone.
    let q = Query {
        from_label: 0,
        to_label: u64::MAX,
        predicate: Some(Predicate::ValueInRange { lo: 8.0, hi: 11.0 }),
        aggregate: Aggregate::Mean,
    };
    let pruned = store.query(&q).unwrap();
    let full = store.query_full_scan(&q).unwrap();
    println!(
        "\nquery value in [8, 11]: mean = {:.6} ± {:.2e} over {} elements",
        pruned.value, pruned.error_bound, pruned.stats.count
    );
    println!(
        "  chunks: {} in range, {} pruned without reading payloads, {} matched",
        pruned.chunks_in_range,
        pruned.chunks_pruned,
        pruned.matched_labels.len()
    );
    assert_eq!(
        pruned.value.to_bits(),
        full.value.to_bits(),
        "pruned and full scans are bit-identical"
    );
    println!(
        "  full scan agrees bit-for-bit (matched {:?})",
        pruned.matched_labels
    );

    // §VI on disk: a second run that drifts after step 9, and the label
    // where the two stores first diverge — computed chunk by chunk in
    // compressed space, straight off the files.
    let path_b = dir.join("run_b.blzs");
    let mut w = StoreWriter::create(&path_b, settings, ScalarType::F32, IndexType::I16).unwrap();
    for t in 0..16u64 {
        let mut frame = snapshot(t, t >= 12);
        if t >= 9 {
            frame = frame.map(|x| x * 1.05 + 0.3);
        }
        w.append(t, &frame).unwrap();
    }
    w.finish().unwrap();
    let store_b = Store::open(&path_b).unwrap();

    let diverged = store.first_divergence(&store_b, 0.05).unwrap();
    println!("\ntwo runs first diverge (rel. L2 > 5%) at label: {diverged:?}");
    let (t1, t2, jump) = store.largest_jump().unwrap().unwrap();
    println!("largest adjacent jump in run A: {jump:.3} between labels {t1} and {t2}");

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&path_b).ok();
}
