//! Integration: the comparison codecs behave the way the paper's related
//! work section describes, and the headline system's distinguishing
//! features hold against them.

use blazr::{compress, Settings};
use blazr_baselines::blaz::BlazCompressed;
use blazr_baselines::szoid::Szoid;
use blazr_baselines::zfpoid::Zfpoid;
use blazr_datasets::gradient::hypercube;
use blazr_tensor::{reduce, NdArray};
use blazr_util::rng::Xoshiro256pp;
use blazr_util::stats::rms_diff;

#[test]
fn zfpoid_rates_give_paper_ratios() {
    // Fig. 3 caption: 8/16/32 bits per scalar ⇒ ratios ≈ 8/4/2 from FP64.
    let a = hypercube(64, 2);
    for (rate, expect) in [(8u32, 8.0f64), (16, 4.0), (32, 2.0)] {
        let bytes = Zfpoid::fixed_rate(rate).compress(&a);
        let ratio = (a.len() * 8) as f64 / bytes.len() as f64;
        assert!(
            (ratio - expect).abs() / expect < 0.05,
            "rate {rate}: ratio {ratio} (expect ≈{expect})"
        );
    }
}

#[test]
fn blazr_beats_blaz_accuracy_at_comparable_ratio() {
    // Same block size (8×8), same index width (int8). Blaz prunes 36/64
    // and differentiates; blazr keeps all 64. Compare at blazr *with*
    // pruning to similar ratio: keep 28 of 64 like Blaz does.
    let a = NdArray::from_fn(vec![64, 64], |i| {
        ((i[0] as f64) / 11.0).sin() + ((i[1] as f64) / 7.0).cos()
    });
    let mask = blazr::PruningMask::drop_high_frequency_corner(&[8, 8], &[6, 6]).unwrap();
    let s = Settings::new(vec![8, 8]).unwrap().with_mask(mask).unwrap();
    let ours = compress::<f64, i8>(&a, &s).unwrap();
    let theirs = BlazCompressed::compress(&a);
    let e_ours = rms_diff(a.as_slice(), ours.decompress().as_slice());
    let e_theirs = rms_diff(a.as_slice(), theirs.decompress().as_slice());
    assert!(
        e_ours < e_theirs,
        "blazr rms {e_ours} should beat Blaz rms {e_theirs}"
    );
}

#[test]
fn szoid_enforces_bounds_where_blazr_does_not() {
    // The §III contrast: SZ guarantees an L∞ bound by varying its ratio;
    // PyBlaz fixes the ratio and lets the error float.
    let mut rng = Xoshiro256pp::seed_from_u64(5);
    let a = NdArray::from_fn(vec![32, 32], |_| rng.uniform_in(-1.0, 1.0));
    let eps = 1e-4;
    let (bytes, stats) = Szoid::new(eps).compress(&a);
    let d = Szoid::decompress(&bytes).unwrap();
    let sz_linf = blazr_util::stats::max_abs_diff(a.as_slice(), d.as_slice());
    assert!(sz_linf <= eps * (1.0 + 1e-12));
    assert!(stats.ratio > 1.0);

    let c = compress::<f64, i8>(&a, &Settings::new(vec![8, 8]).unwrap()).unwrap();
    let bl_linf = blazr_util::stats::max_abs_diff(a.as_slice(), c.decompress().as_slice());
    // blazr's int8 error on noise is far above eps — but its ratio was
    // fixed in advance, which SZ's is not.
    assert!(bl_linf > eps);
}

#[test]
fn only_blazr_supports_the_full_operation_repertoire() {
    // Not a compile-time tautology: this documents the capability gap the
    // paper's Table I draws. Blaz supports add/mul_scalar (both tested in
    // its module); zfpoid and szoid expose no compressed-space operations
    // at all. Here we confirm blazr's repertoire composes on data the
    // baselines also handle.
    let a = hypercube(32, 2);
    let b = NdArray::from_fn(vec![32, 32], |i| 1.0 - hypercube(32, 2).get(i));
    let s = Settings::new(vec![4, 4]).unwrap();
    let ca = compress::<f64, i16>(&a, &s).unwrap();
    let cb = compress::<f64, i16>(&b, &s).unwrap();
    let _ = ca.dot(&cb).unwrap();
    let _ = ca.ssim(&cb, &Default::default()).unwrap();
    let _ = ca.wasserstein(&cb, 2.0).unwrap();
    let _ = ca.covariance(&cb).unwrap();
}

#[test]
fn zfpoid_accuracy_beats_blazr_at_matched_ratio_on_smooth_data() {
    // ZFP's embedded coding spends bits adaptively; at matched ratio on
    // smooth data it should be at least competitive with fixed binning.
    // (The paper never claims PyBlaz wins on ratio/accuracy — its pitch is
    // the operation repertoire; this test keeps us honest about that.)
    let a = hypercube(64, 2);
    let zfp = Zfpoid::fixed_rate(16); // ratio 4
    let dz = Zfpoid::decompress(&zfp.compress(&a)).unwrap();
    let e_zfp = rms_diff(a.as_slice(), dz.as_slice());
    let s = Settings::new(vec![4, 4]).unwrap();
    let c = compress::<f32, i16>(&a, &s).unwrap(); // ratio ≈ 3.9
    let e_blazr = rms_diff(a.as_slice(), c.decompress().as_slice());
    assert!(
        e_zfp < e_blazr * 10.0,
        "sanity: zfp {e_zfp} vs blazr {e_blazr}"
    );
}

#[test]
fn all_codecs_handle_the_gradient_family() {
    for d in 1..=3usize {
        let a = hypercube(16, d);
        // zfpoid
        let dz = Zfpoid::decompress(&Zfpoid::fixed_rate(16).compress(&a)).unwrap();
        assert!(rms_diff(a.as_slice(), dz.as_slice()) < 1e-3, "zfpoid d={d}");
        // szoid
        let (bytes, _) = Szoid::new(1e-4).compress(&a);
        let ds = Szoid::decompress(&bytes).unwrap();
        assert!(rms_diff(a.as_slice(), ds.as_slice()) <= 1e-4, "szoid d={d}");
        // blazr
        let s = Settings::new(vec![4; d]).unwrap();
        let c = compress::<f64, i16>(&a, &s).unwrap();
        assert!(
            rms_diff(a.as_slice(), c.decompress().as_slice()) < 1e-3,
            "blazr d={d}"
        );
        // blaz (2-D only)
        if d == 2 {
            let db = BlazCompressed::compress(&a).decompress();
            assert!(reduce::norm_l2(&a.sub(&db)) < reduce::norm_l2(&a), "blaz");
        }
    }
}
