//! The parallelism determinism contract: every codec stage and every
//! compressed-space operation must produce **bit-identical** output at any
//! thread count.
//!
//! Fox et al.'s ZFP stability analysis warns that error bounds must be
//! re-validated whenever the evaluation order of block operations changes
//! — exactly what parallel chunking does. Our stronger guarantee makes
//! that re-validation unnecessary: the rayon shim splits work into pieces
//! whose shape depends only on the input length, and combines
//! order-sensitive partial results in piece order, so changing the thread
//! count changes *scheduling* but never *arithmetic*. These tests lock
//! that contract in for compress, decompress, serialize, add, dot, mean,
//! variance, and Wasserstein, on shapes that are and are not multiples of
//! the block size.

use blazr::{compress, CompressedArray, Settings};
use blazr_tensor::NdArray;
use blazr_util::rng::Xoshiro256pp;

/// Thread counts every case runs at; 1 is the sequential reference.
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn with_threads<R>(n: usize, op: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        .unwrap()
        .install(op)
}

fn random_array(shape: &[usize], seed: u64) -> NdArray<f64> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    NdArray::from_fn(shape.to_vec(), |_| rng.uniform_in(-1.0, 1.0))
}

/// Shapes covering: block multiples, non-multiples (padded tails), a
/// single block, one element, many blocks (beyond the work-split piece
/// cap), and 1-D/3-D layouts.
fn shapes() -> Vec<(Vec<usize>, Vec<usize>)> {
    vec![
        (vec![16, 16], vec![4, 4]),     // exact multiple
        (vec![18, 19], vec![4, 4]),     // padded in both dimensions
        (vec![4, 4], vec![4, 4]),       // single block
        (vec![1], vec![4]),             // single element, padded
        (vec![257], vec![4]),           // 1-D straddling piece boundaries
        (vec![64, 64], vec![4, 4]),     // 256 blocks ≫ piece cap
        (vec![5, 6, 7], vec![2, 4, 4]), // 3-D, padded
    ]
}

fn exact_bits(x: f64) -> u64 {
    x.to_bits()
}

#[test]
fn compressed_bytes_identical_across_thread_counts() {
    for (shape, bs) in shapes() {
        let a = random_array(&shape, 11);
        let settings = Settings::new(bs.clone()).unwrap();
        let reference = with_threads(1, || {
            compress::<f32, i16>(&a, &settings).unwrap().to_bytes()
        });
        for &threads in &THREAD_COUNTS[1..] {
            let bytes = with_threads(threads, || {
                compress::<f32, i16>(&a, &settings).unwrap().to_bytes()
            });
            assert_eq!(
                bytes, reference,
                "compress+serialize diverged at {threads} threads for shape {shape:?}"
            );
        }
    }
}

#[test]
fn decompression_identical_across_thread_counts() {
    for (shape, bs) in shapes() {
        let a = random_array(&shape, 12);
        let settings = Settings::new(bs.clone()).unwrap();
        let c = compress::<f32, i16>(&a, &settings).unwrap();
        let reference: Vec<u64> = with_threads(1, || {
            c.decompress()
                .as_slice()
                .iter()
                .map(|&x| exact_bits(x))
                .collect()
        });
        for &threads in &THREAD_COUNTS[1..] {
            let got: Vec<u64> = with_threads(threads, || {
                c.decompress()
                    .as_slice()
                    .iter()
                    .map(|&x| exact_bits(x))
                    .collect()
            });
            assert_eq!(
                got, reference,
                "decompress diverged at {threads} threads for shape {shape:?}"
            );
        }
    }
}

#[test]
fn deserialization_identical_across_thread_counts() {
    for (shape, bs) in shapes() {
        let a = random_array(&shape, 13);
        let settings = Settings::new(bs.clone()).unwrap();
        let bytes = compress::<f32, i16>(&a, &settings).unwrap().to_bytes();
        let reference = with_threads(1, || {
            CompressedArray::<f32, i16>::from_bytes(&bytes).unwrap()
        });
        for &threads in &THREAD_COUNTS[1..] {
            let got = with_threads(threads, || {
                CompressedArray::<f32, i16>::from_bytes(&bytes).unwrap()
            });
            assert_eq!(
                got, reference,
                "from_bytes diverged at {threads} threads for shape {shape:?}"
            );
        }
    }
}

#[test]
fn add_identical_across_thread_counts() {
    for (shape, bs) in shapes() {
        let a = random_array(&shape, 14);
        let b = random_array(&shape, 15);
        let settings = Settings::new(bs.clone()).unwrap();
        let ca = compress::<f64, i16>(&a, &settings).unwrap();
        let cb = compress::<f64, i16>(&b, &settings).unwrap();
        let reference = with_threads(1, || ca.add(&cb).unwrap());
        for &threads in &THREAD_COUNTS[1..] {
            let got = with_threads(threads, || ca.add(&cb).unwrap());
            assert_eq!(
                got, reference,
                "add diverged at {threads} threads for shape {shape:?}"
            );
        }
    }
}

#[test]
fn scalar_reductions_identical_across_thread_counts() {
    for (shape, bs) in shapes() {
        let a = random_array(&shape, 16);
        let b = random_array(&shape, 17);
        let settings = Settings::new(bs.clone()).unwrap();
        let ca = compress::<f64, i16>(&a, &settings).unwrap();
        let cb = compress::<f64, i16>(&b, &settings).unwrap();
        let reference = with_threads(1, || {
            (
                exact_bits(ca.dot(&cb).unwrap()),
                exact_bits(ca.mean().unwrap()),
                exact_bits(ca.l2_norm()),
                exact_bits(ca.variance().unwrap()),
                exact_bits(ca.covariance(&cb).unwrap()),
            )
        });
        for &threads in &THREAD_COUNTS[1..] {
            let got = with_threads(threads, || {
                (
                    exact_bits(ca.dot(&cb).unwrap()),
                    exact_bits(ca.mean().unwrap()),
                    exact_bits(ca.l2_norm()),
                    exact_bits(ca.variance().unwrap()),
                    exact_bits(ca.covariance(&cb).unwrap()),
                )
            });
            assert_eq!(
                got, reference,
                "a scalar reduction diverged at {threads} threads for shape {shape:?}"
            );
        }
    }
}

#[test]
fn wasserstein_identical_across_thread_counts() {
    for (shape, bs) in shapes() {
        let a = random_array(&shape, 18);
        let b = random_array(&shape, 19);
        let settings = Settings::new(bs.clone()).unwrap();
        let ca = compress::<f64, i16>(&a, &settings).unwrap();
        let cb = compress::<f64, i16>(&b, &settings).unwrap();
        for p in [1.0, 2.0, 8.0] {
            let reference = with_threads(1, || exact_bits(ca.wasserstein(&cb, p).unwrap()));
            for &threads in &THREAD_COUNTS[1..] {
                let got = with_threads(threads, || exact_bits(ca.wasserstein(&cb, p).unwrap()));
                assert_eq!(
                    got, reference,
                    "wasserstein p={p} diverged at {threads} threads for shape {shape:?}"
                );
            }
        }
    }
}

#[test]
fn end_to_end_pipeline_identical_across_thread_counts() {
    // The whole paper pipeline in one go: compress both operands, add in
    // compressed space, serialize, deserialize, decompress — every stage
    // under the same pool, compared bit-for-bit against the 1-thread run.
    let a = random_array(&[33, 31], 20);
    let b = random_array(&[33, 31], 21);
    let settings = Settings::new(vec![8, 8]).unwrap();
    let pipeline = || {
        let ca = compress::<f32, i16>(&a, &settings).unwrap();
        let cb = compress::<f32, i16>(&b, &settings).unwrap();
        let sum = ca.add(&cb).unwrap();
        let bytes = sum.to_bytes();
        let back = CompressedArray::<f32, i16>::from_bytes(&bytes).unwrap();
        let d = back.decompress();
        (
            bytes,
            d.as_slice()
                .iter()
                .map(|&x| exact_bits(x))
                .collect::<Vec<u64>>(),
        )
    };
    let reference = with_threads(1, pipeline);
    for &threads in &THREAD_COUNTS[1..] {
        let got = with_threads(threads, pipeline);
        assert_eq!(got, reference, "pipeline diverged at {threads} threads");
    }
}

#[test]
fn env_override_is_honored_for_explicit_pools_default() {
    // `ThreadPoolBuilder::num_threads(0)` defers to the process default
    // (BLAZR_NUM_THREADS or all cores) — whatever it resolves to, results
    // must match the 1-thread reference. This is the configuration the CI
    // matrix leg exercises with BLAZR_NUM_THREADS=1 vs default.
    let a = random_array(&[37, 41], 22);
    let settings = Settings::new(vec![8, 8]).unwrap();
    let reference = with_threads(1, || {
        compress::<f32, i16>(&a, &settings).unwrap().to_bytes()
    });
    let default_pool = rayon::ThreadPoolBuilder::new()
        .num_threads(0)
        .build()
        .unwrap();
    let got = default_pool.install(|| compress::<f32, i16>(&a, &settings).unwrap().to_bytes());
    assert_eq!(got, reference);
}
