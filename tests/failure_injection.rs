//! Failure injection: corrupted, truncated, and adversarial inputs must
//! produce errors (or degraded-but-valid outputs), never panics.

use blazr::dynamic::from_bytes_dyn;
use blazr::{compress, CompressedArray, Settings};
use blazr_baselines::szoid::Szoid;
use blazr_baselines::zfpoid::Zfpoid;
use blazr_tensor::NdArray;
use blazr_util::rng::Xoshiro256pp;
use proptest::prelude::*;

fn compressed_bytes() -> Vec<u8> {
    let mut rng = Xoshiro256pp::seed_from_u64(0xBAD);
    let a = NdArray::from_fn(vec![12, 12], |_| rng.uniform());
    compress::<f32, i16>(&a, &Settings::new(vec![4, 4]).unwrap())
        .unwrap()
        .to_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary byte soup must never panic the typed deserializer.
    #[test]
    fn typed_deserializer_survives_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = CompressedArray::<f32, i16>::from_bytes(&bytes);
        let _ = CompressedArray::<f64, i8>::from_bytes(&bytes);
    }

    /// Arbitrary byte soup must never panic the dynamic deserializer.
    #[test]
    fn dynamic_deserializer_survives_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = from_bytes_dyn(&bytes);
    }

    /// Single bit flips in a valid stream: either a clean error or a
    /// structurally valid result — never a panic.
    #[test]
    fn bit_flips_never_panic(bit in 0usize..1000) {
        let mut bytes = compressed_bytes();
        let pos = bit % (bytes.len() * 8);
        bytes[pos / 8] ^= 1 << (pos % 8);
        if let Ok(c) = from_bytes_dyn(&bytes) {
            // Whatever decoded must decompress without panicking —
            // unless the flipped bit inflated the claimed shape into
            // absurd allocations, which the size guards should reject.
            let shape_len: usize = c.shape().iter().product();
            if shape_len < 1 << 20 {
                let _ = c.decompress();
            }
        }
    }

    /// Truncation at every prefix length: never a panic.
    #[test]
    fn truncations_never_panic(cut in 0usize..600) {
        let bytes = compressed_bytes();
        let cut = cut.min(bytes.len());
        let _ = from_bytes_dyn(&bytes[..cut]);
    }

    /// zfpoid decompression survives garbage and bit flips.
    #[test]
    fn zfpoid_decoder_survives_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Zfpoid::decompress(&bytes);
    }

    /// szoid decompression survives garbage.
    #[test]
    fn szoid_decoder_survives_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Szoid::decompress(&bytes);
    }

    /// Extreme values (subnormals, huge magnitudes, mixed signs) round-trip
    /// without panicking in any codec.
    #[test]
    fn extreme_values_do_not_panic(exp in -300i32..300, seed in 0u64..100) {
        let scale = 10f64.powi(exp);
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let a = NdArray::from_fn(vec![8, 8], |_| rng.uniform_in(-1.0, 1.0) * scale);
        let c = compress::<f32, i16>(&a, &Settings::new(vec![4, 4]).unwrap()).unwrap();
        let _ = c.decompress();
        let _ = Zfpoid::decompress(&Zfpoid::fixed_rate(16).compress(&a));
        let (bytes, _) = Szoid::new(scale.max(1e-300) * 1e-3).compress(&a);
        let _ = Szoid::decompress(&bytes);
    }
}

#[test]
fn non_finite_inputs_are_survivable() {
    // NaN and Inf in the input: the codec mirrors PyBlaz (propagates
    // non-finite scales, producing non-finite blocks) without panicking.
    let mut a = NdArray::from_fn(vec![8, 8], |i| i[0] as f64);
    a.set(&[2, 2], f64::NAN);
    a.set(&[5, 5], f64::INFINITY);
    let c = compress::<f64, i16>(&a, &Settings::new(vec![4, 4]).unwrap()).unwrap();
    let d = c.decompress();
    assert_eq!(d.shape(), &[8, 8]);
    // The NaN block decodes as non-finite; untouched blocks stay clean.
    assert!(d.get(&[6, 1]).is_finite() || d.get(&[1, 6]).is_finite());
    let _ = c.l2_norm();
    let _ = c.mean();
}

#[test]
fn zero_sized_inputs_are_rejected_or_handled() {
    // A shape with a zero extent has no elements; blocking produces zero
    // blocks and everything stays consistent.
    let a = NdArray::<f64>::from_vec(vec![0, 4], vec![]);
    let c = compress::<f32, i8>(&a, &Settings::new(vec![4, 4]).unwrap()).unwrap();
    assert_eq!(c.block_count(), 0);
    let d = c.decompress();
    assert_eq!(d.shape(), &[0, 4]);
    assert_eq!(d.len(), 0);
}
