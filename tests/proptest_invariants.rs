//! Property-based tests over the codec, the operations, and the
//! baselines: invariants that must hold for *arbitrary* data, shapes, and
//! settings.

use blazr::{compress, compress_with_report, CompressedArray, PruningMask, Settings};
use blazr_baselines::szoid::Szoid;
use blazr_baselines::zfpoid::Zfpoid;
use blazr_tensor::{reduce, NdArray};
use proptest::prelude::*;

/// Strategy: a small 2-D array with values in [−scale, scale].
fn small_array() -> impl Strategy<Value = NdArray<f64>> {
    (2usize..24, 2usize..24, 0.1f64..100.0).prop_flat_map(|(r, c, scale)| {
        proptest::collection::vec(-1.0f64..1.0, r * c).prop_map(move |v| {
            NdArray::from_vec(vec![r, c], v.into_iter().map(|x| x * scale).collect())
        })
    })
}

fn block_shape() -> impl Strategy<Value = Vec<usize>> {
    prop_oneof![
        Just(vec![2, 2]),
        Just(vec![4, 4]),
        Just(vec![8, 8]),
        Just(vec![2, 8]),
        Just(vec![4, 8]),
    ]
}

/// Strategy: 1-D arrays with lengths chosen to straddle the parallel
/// work-split granularity. The rayon shim splits an n-item loop into at
/// most 64 length-derived pieces, so interesting lengths (in *blocks*,
/// with block shape `[4]`) sit around 1 (single block / piece), 63–65
/// (where the piece count saturates and piece sizes become ragged), and
/// around 128 (pieces of 2 with uneven remainders). Odd element counts
/// additionally force a padded ("empty tail") final chunk.
fn chunk_boundary_array() -> impl Strategy<Value = NdArray<f64>> {
    prop_oneof![
        1usize..10,    // sub-block and couple-of-blocks lengths
        249usize..264, // 62..66 blocks: piece-count saturation boundary
        505usize..522, // 126..131 blocks: ragged 2-block pieces
    ]
    .prop_flat_map(|len| {
        proptest::collection::vec(-1.0f64..1.0, len)
            .prop_map(move |v| NdArray::from_vec(vec![len], v))
    })
}

/// Runs `op` under an explicitly sized thread pool.
fn with_threads<R>(n: usize, op: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        .unwrap()
        .install(op)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Decompression preserves shape, and its L2 error equals the
    /// coefficient-space L2 error reported at compression (orthonormal
    /// transform), for arbitrary data, shape, and block shape.
    #[test]
    fn l2_identity_holds(a in small_array(), bs in block_shape()) {
        let s = Settings::new(bs).unwrap();
        let (c, report) = compress_with_report::<f64, i16>(&a, &s).unwrap();
        let d = c.decompress();
        prop_assert_eq!(d.shape(), a.shape());
        let l2 = reduce::norm_l2(&a.sub(&d));
        // Padding regions also carry coefficient error; the report's total
        // covers the padded domain, so it must be ≥ the cropped error and
        // close when padding is small.
        prop_assert!(l2 <= report.total_coeff_l2 * (1.0 + 1e-9) + 1e-12,
            "decompressed L2 {} vs coefficient L2 {}", l2, report.total_coeff_l2);
    }

    /// The L∞ bound from the report holds on every element.
    #[test]
    fn linf_bound_holds(a in small_array(), bs in block_shape()) {
        let s = Settings::new(bs).unwrap();
        let (c, report) = compress_with_report::<f64, i8>(&a, &s).unwrap();
        let d = c.decompress();
        let err = blazr_util::stats::max_abs_diff(a.as_slice(), d.as_slice());
        prop_assert!(err <= report.linf_bound() * (1.0 + 1e-9) + 1e-12,
            "err {} bound {}", err, report.linf_bound());
    }

    /// Negation is an exact involution in compressed space.
    #[test]
    fn negation_involution(a in small_array()) {
        let s = Settings::new(vec![4, 4]).unwrap();
        let c = compress::<f32, i16>(&a, &s).unwrap();
        prop_assert_eq!(c.negate().negate(), c);
    }

    /// mul_scalar composes multiplicatively: (c·x)·y == c·(x·y) on
    /// decompression (both paths are exact index/scale transforms).
    #[test]
    fn scalar_multiplication_composes(a in small_array(), x in -4.0f64..4.0, y in -4.0f64..4.0) {
        let s = Settings::new(vec![4, 4]).unwrap();
        let c = compress::<f64, i16>(&a, &s).unwrap();
        let lhs = c.mul_scalar(x).mul_scalar(y).decompress();
        let rhs = c.mul_scalar(x * y).decompress();
        let worst = blazr_util::stats::max_abs_diff(lhs.as_slice(), rhs.as_slice());
        // One extra rounding of N in the two-step path.
        let scale = reduce::norm_linf(&a).max(1.0) * x.abs().max(1.0) * y.abs().max(1.0);
        prop_assert!(worst <= 1e-9 * scale, "worst {} scale {}", worst, scale);
    }

    /// Addition commutes: A + B == B + A bit-for-bit.
    #[test]
    fn addition_commutes(a in small_array(), seed in 0u64..1000) {
        let mut rng = blazr_util::rng::Xoshiro256pp::seed_from_u64(seed);
        let b = NdArray::from_fn(a.shape().to_vec(), |_| rng.uniform_in(-1.0, 1.0));
        let s = Settings::new(vec![4, 4]).unwrap();
        let ca = compress::<f64, i16>(&a, &s).unwrap();
        let cb = compress::<f64, i16>(&b, &s).unwrap();
        prop_assert_eq!(ca.add(&cb).unwrap(), cb.add(&ca).unwrap());
    }

    /// Serialization round-trips exactly for arbitrary inputs and masks.
    #[test]
    fn serialization_roundtrip(a in small_array(), kept in 1usize..16) {
        let mask = PruningMask::keep_lowest_frequencies(&[4, 4], kept).unwrap();
        let s = Settings::new(vec![4, 4]).unwrap().with_mask(mask).unwrap();
        let c = compress::<f32, i8>(&a, &s).unwrap();
        let back = CompressedArray::<f32, i8>::from_bytes(&c.to_bytes()).unwrap();
        prop_assert_eq!(back, c);
    }

    /// The szoid error bound is honored for arbitrary data and bounds.
    #[test]
    fn szoid_bound_holds(a in small_array(), exp in -6i32..0) {
        let eps = 10f64.powi(exp);
        let (bytes, _) = Szoid::new(eps).compress(&a);
        let d = Szoid::decompress(&bytes).unwrap();
        for (x, y) in a.as_slice().iter().zip(d.as_slice()) {
            prop_assert!((x - y).abs() <= eps * (1.0 + 1e-12),
                "|{} - {}| > {}", x, y, eps);
        }
    }

    /// zfpoid honors its exact bit budget for arbitrary data.
    #[test]
    fn zfpoid_rate_exact(a in small_array(), rate in 2u32..48) {
        let codec = Zfpoid::fixed_rate(rate);
        let bytes = codec.compress(&a);
        let bits = codec.compressed_bits(a.shape());
        prop_assert_eq!(bytes.len(), (bits as usize).div_ceil(8));
        let d = Zfpoid::decompress(&bytes).unwrap();
        prop_assert_eq!(d.shape(), a.shape());
    }

    /// L2 norm is absolutely homogeneous in compressed space:
    /// ‖x·A‖ == |x|·‖A‖ (mul_scalar is exact).
    #[test]
    fn norm_homogeneity(a in small_array(), x in -8.0f64..8.0) {
        let s = Settings::new(vec![4, 4]).unwrap();
        let c = compress::<f64, i32>(&a, &s).unwrap();
        let lhs = c.mul_scalar(x).l2_norm();
        let rhs = x.abs() * c.l2_norm();
        prop_assert!((lhs - rhs).abs() <= 1e-9 * rhs.max(1.0), "{} vs {}", lhs, rhs);
    }

    /// Cauchy–Schwarz in compressed space: |⟨A,B⟩| ≤ ‖A‖·‖B‖.
    #[test]
    fn cauchy_schwarz(a in small_array(), seed in 0u64..1000) {
        let mut rng = blazr_util::rng::Xoshiro256pp::seed_from_u64(seed);
        let b = NdArray::from_fn(a.shape().to_vec(), |_| rng.uniform_in(-1.0, 1.0));
        let s = Settings::new(vec![4, 4]).unwrap();
        let ca = compress::<f64, i32>(&a, &s).unwrap();
        let cb = compress::<f64, i32>(&b, &s).unwrap();
        let dot = ca.dot(&cb).unwrap().abs();
        let bound = ca.l2_norm() * cb.l2_norm();
        prop_assert!(dot <= bound * (1.0 + 1e-9), "{} vs {}", dot, bound);
    }

    /// Variance is non-negative for arbitrary inputs.
    #[test]
    fn variance_nonnegative(a in small_array()) {
        let s = Settings::new(vec![4, 4]).unwrap();
        let c = compress::<f64, i16>(&a, &s).unwrap();
        prop_assert!(c.variance().unwrap() >= -1e-12);
    }

    /// Chunk-boundary lengths: the full codec is bit-deterministic across
    /// thread counts exactly at the lengths where parallel piece shapes
    /// get ragged (single-block arrays, piece-cap saturation, padded
    /// tails).
    #[test]
    fn parallel_codec_deterministic_at_chunk_boundaries(
        a in chunk_boundary_array(),
        threads in 2usize..9,
    ) {
        let s = Settings::new(vec![4]).unwrap();
        let reference = with_threads(1, || {
            let c = compress::<f64, i16>(&a, &s).unwrap();
            (c.to_bytes(), c.decompress())
        });
        let parallel = with_threads(threads, || {
            let c = compress::<f64, i16>(&a, &s).unwrap();
            (c.to_bytes(), c.decompress())
        });
        prop_assert_eq!(&parallel.0, &reference.0,
            "serialized bytes diverged at len {} threads {}", a.len(), threads);
        let ref_bits: Vec<u64> = reference.1.as_slice().iter().map(|x| x.to_bits()).collect();
        let par_bits: Vec<u64> = parallel.1.as_slice().iter().map(|x| x.to_bits()).collect();
        prop_assert_eq!(par_bits, ref_bits,
            "decompressed values diverged at len {} threads {}", a.len(), threads);
    }

    /// Chunk-boundary lengths: compressed-space add and the scalar
    /// reductions are bit-deterministic across thread counts, and the
    /// roundtrip error bound still holds when the work ran in parallel.
    #[test]
    fn parallel_ops_deterministic_at_chunk_boundaries(
        a in chunk_boundary_array(),
        seed in 0u64..1000,
        threads in 2usize..9,
    ) {
        let mut rng = blazr_util::rng::Xoshiro256pp::seed_from_u64(seed);
        let b = NdArray::from_fn(a.shape().to_vec(), |_| rng.uniform_in(-1.0, 1.0));
        let s = Settings::new(vec![4]).unwrap();
        let ca = compress::<f64, i16>(&a, &s).unwrap();
        let cb = compress::<f64, i16>(&b, &s).unwrap();
        let reference = with_threads(1, || {
            (ca.add(&cb).unwrap(), ca.dot(&cb).unwrap().to_bits(),
             ca.mean().unwrap().to_bits(), ca.l2_norm().to_bits())
        });
        let parallel = with_threads(threads, || {
            (ca.add(&cb).unwrap(), ca.dot(&cb).unwrap().to_bits(),
             ca.mean().unwrap().to_bits(), ca.l2_norm().to_bits())
        });
        prop_assert_eq!(&parallel.0, &reference.0);
        prop_assert_eq!(parallel.1, reference.1);
        prop_assert_eq!(parallel.2, reference.2);
        prop_assert_eq!(parallel.3, reference.3);
        // The §IV-D error story survives the parallel path.
        let (c, report) = with_threads(threads, || {
            compress_with_report::<f64, i16>(&a, &s).unwrap()
        });
        let d = with_threads(threads, || c.decompress());
        let err = blazr_util::stats::max_abs_diff(a.as_slice(), d.as_slice());
        prop_assert!(err <= report.linf_bound() * (1.0 + 1e-9) + 1e-12,
            "err {} bound {}", err, report.linf_bound());
    }
}
