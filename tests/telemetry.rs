//! Telemetry contract tests: counters are **exact** (not sampled) at any
//! thread count, and instrumentation is **observation-only** — serialized
//! bytes are bit-identical whether telemetry is off, counting, or timing
//! spans, at 1/2/4/8 threads.
//!
//! The telemetry mode and registry are process-global, so every test
//! serializes on one mutex and leaves the mode at `Off` on exit.

use std::sync::{Mutex, MutexGuard};

use blazr::{compress, CompressedArray, Settings};
use blazr_store::{Aggregate, Predicate, Query, Store, StoreWriter};
use blazr_telemetry as tel;
use blazr_tensor::NdArray;
use blazr_util::rng::Xoshiro256pp;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

static TEST_MUTEX: Mutex<()> = Mutex::new(());

/// Serialize tests sharing the global registry/mode; reset both on entry.
fn exclusive() -> MutexGuard<'static, ()> {
    let guard = TEST_MUTEX.lock().unwrap_or_else(|e| e.into_inner());
    tel::set_mode(tel::Mode::Off);
    tel::registry().reset();
    guard
}

fn with_threads<R>(n: usize, op: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        .unwrap()
        .install(op)
}

fn random_array(shape: &[usize], seed: u64) -> NdArray<f64> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    NdArray::from_fn(shape.to_vec(), |_| rng.uniform_in(-1.0, 1.0))
}

/// `codec.compress.blocks` / `codec.decompress.blocks` count every block
/// exactly once, no matter how the work was split across threads.
#[test]
fn counters_exact_at_every_thread_count() {
    let _guard = exclusive();

    // Smooth field: compresses well, so serialization takes the rANS
    // path and the coder counters fire too. 256 blocks of 4x4.
    let a = NdArray::from_fn(vec![64, 64], |ix| {
        (ix[0] as f64 * 0.013).sin() + (ix[1] as f64 * 0.017).cos()
    });
    let settings = Settings::new(vec![4, 4]).unwrap();
    const BLOCKS: u64 = 256;

    for &threads in &THREAD_COUNTS {
        tel::registry().reset();
        tel::set_mode(tel::Mode::Counters);
        let c = with_threads(threads, || {
            let c = compress::<f32, i16>(&a, &settings).unwrap();
            std::hint::black_box(c.decompress());
            c
        });
        let bytes = c.to_bytes();
        tel::set_mode(tel::Mode::Off);

        let snap = tel::registry().snapshot();
        assert_eq!(
            snap.counter("codec.compress.blocks"),
            Some(BLOCKS),
            "compress block count drifted at {threads} threads"
        );
        assert_eq!(
            snap.counter("codec.decompress.blocks"),
            Some(BLOCKS),
            "decompress block count drifted at {threads} threads"
        );
        // The serializer counts every bin index it feeds the entropy
        // coder: one per kept coefficient per block.
        let symbols = snap.counter("coder.symbols").unwrap_or(0);
        assert_eq!(
            symbols % BLOCKS,
            0,
            "coder.symbols not a whole number of blocks at {threads} threads"
        );
        assert!(symbols > 0, "serializer recorded no symbols");
        drop(bytes);
    }
}

/// Multi-thread teams route through the shim engine and record pool
/// activity; a single-thread team never touches it.
#[test]
fn rayon_counters_track_pool_activity() {
    let _guard = exclusive();

    let a = random_array(&[64, 64], 43);
    let settings = Settings::new(vec![4, 4]).unwrap();

    tel::set_mode(tel::Mode::Counters);
    with_threads(4, || {
        std::hint::black_box(compress::<f32, i16>(&a, &settings).unwrap());
    });
    tel::set_mode(tel::Mode::Off);
    let snap = tel::registry().snapshot();
    let calls = snap.counter("rayon.parallel_calls").unwrap_or(0);
    let tasks = snap.counter("rayon.tasks").unwrap_or(0);
    assert!(calls >= 1, "4-thread compress never hit the pool engine");
    assert!(
        tasks >= calls,
        "every parallel call splits into at least one piece"
    );

    tel::registry().reset();
    tel::set_mode(tel::Mode::Counters);
    with_threads(1, || {
        std::hint::black_box(compress::<f32, i16>(&a, &settings).unwrap());
    });
    tel::set_mode(tel::Mode::Off);
    let snap = tel::registry().snapshot();
    assert_eq!(
        snap.counter("rayon.parallel_calls").unwrap_or(0),
        0,
        "single-thread team must take the sequential path"
    );
}

/// The determinism contract extended to telemetry: with spans, with
/// counters, or with everything off, the serialized bytes are identical
/// at every thread count. Instrumentation observes; it never steers.
#[test]
fn serialized_bytes_identical_with_telemetry_on_or_off() {
    let _guard = exclusive();

    let a = random_array(&[37, 41], 47); // padded tails in both dims
    let settings = Settings::new(vec![4, 4]).unwrap();

    tel::set_mode(tel::Mode::Off);
    let reference = with_threads(1, || {
        compress::<f32, i16>(&a, &settings).unwrap().to_bytes()
    });

    for &threads in &THREAD_COUNTS {
        for mode in [tel::Mode::Off, tel::Mode::Counters, tel::Mode::Spans] {
            tel::set_mode(mode);
            let bytes = with_threads(threads, || {
                compress::<f32, i16>(&a, &settings).unwrap().to_bytes()
            });
            tel::set_mode(tel::Mode::Off);
            assert_eq!(
                bytes,
                reference,
                "bytes diverged at {threads} threads with telemetry {}",
                mode.name()
            );
            // And the bytes decode back identically too.
            let c = CompressedArray::<f32, i16>::from_bytes(&bytes).unwrap();
            assert_eq!(c.to_bytes(), reference);
        }
    }
}

/// Store counters reconcile exactly with the query result's own pruning
/// stats, and the result itself is unchanged by telemetry.
#[test]
fn store_counters_match_query_results() {
    let _guard = exclusive();

    let path =
        std::env::temp_dir().join(format!("blazr-telemetry-test-{}.blzs", std::process::id()));
    let mut w = StoreWriter::create(
        &path,
        Settings::new(vec![4, 4]).unwrap(),
        blazr::ScalarType::F32,
        blazr::IndexType::I16,
    )
    .unwrap();
    // Chunk t has values in [t, t+2): a value predicate prunes most.
    for t in 0..8u64 {
        let frame = NdArray::from_fn(vec![8, 8], |i| t as f64 + (i[0] + i[1]) as f64 / 14.0 * 2.0);
        w.append(t, &frame).unwrap();
    }
    w.finish().unwrap();

    let q = Query {
        from_label: 0,
        to_label: 7,
        predicate: Some(Predicate::ValueInRange { lo: 2.5, hi: 4.5 }),
        aggregate: Aggregate::Sum,
    };

    tel::set_mode(tel::Mode::Off);
    let store = Store::open(&path).unwrap();
    let quiet = store.query(&q).unwrap();
    drop(store);

    tel::registry().reset();
    tel::set_mode(tel::Mode::Counters);
    let store = Store::open(&path).unwrap();
    let loud = store.query(&q).unwrap();
    tel::set_mode(tel::Mode::Off);

    assert_eq!(loud, quiet, "telemetry changed a query result");
    assert!(loud.chunks_pruned > 0, "predicate should prune some chunks");
    assert_eq!(
        loud.chunks_pruned + loud.chunks_scanned,
        loud.chunks_in_range
    );

    let snap = tel::registry().snapshot();
    assert_eq!(snap.counter("store.queries"), Some(1));
    assert_eq!(
        snap.counter("store.chunks_pruned"),
        Some(loud.chunks_pruned as u64)
    );
    assert_eq!(
        snap.counter("store.chunks_scanned"),
        Some(loud.chunks_scanned as u64)
    );
    assert_eq!(
        snap.counter("store.query.payload_bytes"),
        Some(loud.payload_bytes_read)
    );
    // Lazy checksums: only scanned chunks get verified, each at most once.
    let verified = snap.counter("store.checksum.verified").unwrap_or(0);
    assert!(verified <= loud.chunks_scanned as u64);
    assert_eq!(snap.counter("store.checksum.failed").unwrap_or(0), 0);

    std::fs::remove_file(&path).ok();
}

/// Snapshot export round-trips the recorded names into both formats.
#[test]
fn snapshot_exports_contain_recorded_metrics() {
    let _guard = exclusive();

    let a = random_array(&[16, 16], 53);
    let settings = Settings::new(vec![4, 4]).unwrap();
    tel::set_mode(tel::Mode::Spans);
    std::hint::black_box(compress::<f32, i16>(&a, &settings).unwrap());
    tel::set_mode(tel::Mode::Off);

    let snap = tel::registry().snapshot();
    let json = snap.to_json();
    let prom = snap.to_prometheus();
    assert!(json.contains("\"codec.compress.blocks\""));
    assert!(json.contains("\"codec.compress\""));
    assert!(prom.contains("blazr_codec_compress_blocks_total"));
    assert!(prom.contains("quantile=\"0.99\""));
}
