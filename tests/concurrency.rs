//! Concurrency safety of the compressed representation: compile-time
//! `Send`/`Sync` guarantees, plus a shared read-path stress test — many
//! threads running compressed-space operations against the *same*
//! `CompressedArray` concurrently, each checking its results against
//! uncompressed references computed up front.

use std::sync::Arc;

use blazr::{compress, CompressedArray, Settings};
use blazr_precision::{BF16, F16};
use blazr_tensor::{blocking::Blocked, reduce, NdArray};
use blazr_util::rng::Xoshiro256pp;

fn assert_send<T: Send>() {}
fn assert_sync<T: Sync>() {}

#[test]
fn core_types_are_send_and_sync() {
    assert_send::<CompressedArray<f64, i16>>();
    assert_sync::<CompressedArray<f64, i16>>();
    assert_send::<CompressedArray<f32, i8>>();
    assert_sync::<CompressedArray<f32, i8>>();
    assert_send::<CompressedArray<F16, i32>>();
    assert_sync::<CompressedArray<F16, i32>>();
    assert_send::<CompressedArray<BF16, i64>>();
    assert_sync::<CompressedArray<BF16, i64>>();
    assert_send::<NdArray<f64>>();
    assert_sync::<NdArray<f64>>();
    assert_send::<Blocked<f32>>();
    assert_sync::<Blocked<f32>>();
    assert_send::<Settings>();
    assert_sync::<Settings>();
}

fn random_array(shape: &[usize], seed: u64) -> NdArray<f64> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    NdArray::from_fn(shape.to_vec(), |_| rng.uniform_in(-1.0, 1.0))
}

#[test]
fn shared_array_survives_concurrent_reads() {
    // One pair of compressed arrays, shared read-only by every thread.
    let a = random_array(&[48, 48], 1);
    let b = random_array(&[48, 48], 2);
    let settings = Settings::new(vec![8, 8]).unwrap();
    let ca = Arc::new(compress::<f64, i16>(&a, &settings).unwrap());
    let cb = Arc::new(compress::<f64, i16>(&b, &settings).unwrap());

    // Reference results, computed before any concurrency.
    let ref_dot = ca.dot(&cb).unwrap();
    let ref_mean = ca.mean().unwrap();
    let ref_norm = ca.l2_norm();
    let ref_var = ca.variance().unwrap();
    let ref_wass = ca.wasserstein(&cb, 2.0).unwrap();
    let ref_sum = ca.add(&cb).unwrap();
    let ref_bytes = ca.to_bytes();
    let ref_dec: Vec<u64> = ca
        .decompress()
        .as_slice()
        .iter()
        .map(|x| x.to_bits())
        .collect();
    let ref_uncompressed_dot = reduce::dot(&a, &b);

    // Each worker runs its own multi-threaded pool, so pools from
    // different workers overlap: ops-inside-ops across OS threads all
    // reading the same compressed payloads.
    std::thread::scope(|s| {
        for worker in 0..8usize {
            let ca = Arc::clone(&ca);
            let cb = Arc::clone(&cb);
            let ref_sum = &ref_sum;
            let ref_bytes = &ref_bytes;
            let ref_dec = &ref_dec;
            s.spawn(move || {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(1 + worker % 4)
                    .build()
                    .unwrap();
                pool.install(|| {
                    for _round in 0..4 {
                        let dot = ca.dot(&cb).unwrap();
                        assert_eq!(dot.to_bits(), ref_dot.to_bits());
                        // Sanity: still agrees with the uncompressed dot.
                        assert!((dot - ref_uncompressed_dot).abs() < 0.1);
                        assert_eq!(ca.mean().unwrap().to_bits(), ref_mean.to_bits());
                        assert_eq!(ca.l2_norm().to_bits(), ref_norm.to_bits());
                        assert_eq!(ca.variance().unwrap().to_bits(), ref_var.to_bits());
                        assert_eq!(
                            ca.wasserstein(&cb, 2.0).unwrap().to_bits(),
                            ref_wass.to_bits()
                        );
                        assert_eq!(&ca.add(&cb).unwrap(), ref_sum);
                        assert_eq!(&ca.to_bytes(), ref_bytes);
                        let dec: Vec<u64> = ca
                            .decompress()
                            .as_slice()
                            .iter()
                            .map(|x| x.to_bits())
                            .collect();
                        assert_eq!(&dec, ref_dec);
                    }
                });
            });
        }
    });
}

#[test]
fn concurrent_compressions_are_independent() {
    // Different threads compressing different inputs at different thread
    // counts must not interfere: each output equals its solo-run twin.
    let settings = Settings::new(vec![4, 4]).unwrap();
    let inputs: Vec<NdArray<f64>> = (0..6).map(|i| random_array(&[30, 26], 100 + i)).collect();
    let solo: Vec<Vec<u8>> = inputs
        .iter()
        .map(|a| compress::<f32, i16>(a, &settings).unwrap().to_bytes())
        .collect();

    std::thread::scope(|s| {
        for (i, a) in inputs.iter().enumerate() {
            let settings = &settings;
            let expect = &solo[i];
            s.spawn(move || {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(1 + i % 3)
                    .build()
                    .unwrap();
                for _ in 0..3 {
                    let bytes =
                        pool.install(|| compress::<f32, i16>(a, settings).unwrap().to_bytes());
                    assert_eq!(&bytes, expect, "input {i}");
                }
            });
        }
    });
}

#[test]
fn compressed_array_can_move_across_threads() {
    // Move (not just share) a compressed array into another thread and
    // round-trip it there.
    let a = random_array(&[12, 20], 3);
    let c = compress::<f32, i16>(&a, &Settings::new(vec![4, 4]).unwrap()).unwrap();
    let shape = c.shape().to_vec();
    let handle = std::thread::spawn(move || {
        let d = c.decompress();
        (d.shape().to_vec(), c.to_bytes())
    });
    let (dshape, bytes) = handle.join().unwrap();
    assert_eq!(dshape, shape);
    let back = CompressedArray::<f32, i16>::from_bytes(&bytes).unwrap();
    assert_eq!(back.shape(), &shape[..]);
}
