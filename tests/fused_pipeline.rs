//! The fused codec pipeline must be bit-identical to the staged reference
//! built from public primitives.
//!
//! `compress` gathers, transforms, and bins each block in thread-local
//! scratch without materializing the blocked coefficient buffer, and
//! `decompress` mirrors it (unbin → inverse transform → block scatter).
//! These tests rebuild both directions the slow way —
//! [`Blocked::partition`] → [`BlockTransform::forward`] → per-coefficient
//! binning, and [`CompressedArray::specified_coefficients`] →
//! [`BlockTransform::inverse`] → [`Blocked::merge`] → convert — and demand
//! byte-for-byte agreement across block-multiple, padded-tail, 1-D/2-D/3-D,
//! pruned-mask, and Haar/identity/Walsh–Hadamard configurations, at 1, 2,
//! 4, and 8 threads.

use blazr::{
    compress, BinIndex, CompressedArray, PruningMask, Settings, StorableReal, TransformKind,
};
use blazr_tensor::blocking::Blocked;
use blazr_tensor::NdArray;
use blazr_transform::BlockTransform;
use blazr_util::rng::Xoshiro256pp;
use proptest::prelude::*;

/// Runs `op` under an explicitly sized thread pool.
fn with_threads<R>(n: usize, op: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        .unwrap()
        .install(op)
}

/// Staged reference for steps (a)–(e), written against the public
/// primitives with the original per-coefficient binning formula: convert,
/// partition, forward-transform every block, then bin `q = c / N` (zero
/// when `N` is) coefficient by coefficient.
fn staged_compress<P: StorableReal, I: BinIndex>(
    a: &NdArray<f64>,
    settings: &Settings,
) -> (Vec<u64>, Vec<i64>) {
    let converted: NdArray<P> = a.convert();
    let mut blocked = Blocked::partition(&converted, &settings.block_shape);
    let bt = BlockTransform::<P>::new(settings.transform, &settings.block_shape);
    let block_len = bt.block_len().max(1);
    let mut scratch = vec![P::zero(); block_len];
    for kb in 0..blocked.block_count() {
        bt.forward(blocked.block_mut(kb), &mut scratch);
    }
    let kept = settings.mask.kept_positions();
    let mut biggest = Vec::new();
    let mut indices = Vec::new();
    for kb in 0..blocked.block_count() {
        let block = blocked.block(kb);
        let mut n = P::zero();
        for &c in block {
            n = n.max_val(c.abs());
        }
        biggest.push(n.to_bits_u64());
        for &pos in kept {
            let q = if n == P::zero() {
                0.0
            } else {
                (block[pos] / n).to_f64()
            };
            indices.push(I::bin(q).to_i64());
        }
    }
    (biggest, indices)
}

/// Staged reference for decompression: unflatten the specified
/// coefficients, inverse-transform every block, merge, convert.
fn staged_decompress<P: StorableReal, I: BinIndex>(c: &CompressedArray<P, I>) -> Vec<u64> {
    let mut blocked = c.specified_coefficients();
    let bt = BlockTransform::<P>::new(c.settings().transform, c.block_shape());
    let block_len = bt.block_len().max(1);
    let mut scratch = vec![P::zero(); block_len];
    for kb in 0..blocked.block_count() {
        bt.inverse(blocked.block_mut(kb), &mut scratch);
    }
    let merged: NdArray<P> = blocked.merge(c.shape());
    let out: NdArray<f64> = merged.convert();
    out.as_slice().iter().map(|x| x.to_bits()).collect()
}

/// Compressed payload of the fused path, as comparable bit vectors.
fn fused_compress<P: StorableReal, I: BinIndex>(
    a: &NdArray<f64>,
    settings: &Settings,
) -> (Vec<u64>, Vec<i64>) {
    let c = compress::<P, I>(a, settings).unwrap();
    (
        c.biggest().iter().map(|&n| n.to_bits_u64()).collect(),
        c.indices().iter().map(|&f| f.to_i64()).collect(),
    )
}

/// Asserts fused == staged for both directions, at every thread count.
fn assert_fused_matches_staged<P: StorableReal, I: BinIndex>(
    a: &NdArray<f64>,
    settings: &Settings,
    label: &str,
) {
    let reference = with_threads(1, || staged_compress::<P, I>(a, settings));
    let c = with_threads(1, || compress::<P, I>(a, settings).unwrap());
    let ref_decompressed = with_threads(1, || staged_decompress(&c));
    for threads in [1usize, 2, 4, 8] {
        let fused = with_threads(threads, || fused_compress::<P, I>(a, settings));
        assert_eq!(
            fused.0, reference.0,
            "{label}: biggest diverged at {threads} threads"
        );
        assert_eq!(
            fused.1, reference.1,
            "{label}: indices diverged at {threads} threads"
        );
        let decompressed = with_threads(threads, || c.decompress());
        let bits: Vec<u64> = decompressed
            .as_slice()
            .iter()
            .map(|x| x.to_bits())
            .collect();
        assert_eq!(
            bits, ref_decompressed,
            "{label}: decompressed values diverged at {threads} threads"
        );
    }
}

fn random_array(shape: Vec<usize>, seed: u64) -> NdArray<f64> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    NdArray::from_fn(shape, |_| rng.uniform_in(-1.0, 1.0))
}

/// Strategy: a (shape, block shape) pair covering block-multiple and
/// padded-tail geometries in 1-D, 2-D, and 3-D.
fn geometry() -> impl Strategy<Value = (Vec<usize>, Vec<usize>)> {
    prop_oneof![
        // 1-D, exact block multiples.
        (1usize..8).prop_map(|m| (vec![m * 8], vec![8])),
        // 1-D with a padded tail.
        (2usize..40).prop_map(|len| (vec![len], vec![8])),
        // 2-D, padded or exact.
        (2usize..20, 2usize..20).prop_map(|(r, c)| (vec![r, c], vec![4, 4])),
        // 3-D with ragged extents against a non-hypercubic block.
        (1usize..6, 1usize..7, 1usize..10).prop_map(|(x, y, z)| (vec![x, y, z], vec![2, 4, 4])),
    ]
}

fn transform_kind() -> impl Strategy<Value = TransformKind> {
    prop_oneof![
        Just(TransformKind::Dct),
        Just(TransformKind::Haar),
        Just(TransformKind::Identity),
        Just(TransformKind::WalshHadamard),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The fused f32/i16 pipeline matches the staged reference bit for bit
    /// over arbitrary geometry, transform, and data, at 1/2/4/8 threads.
    #[test]
    fn fused_equals_staged_f32_i16(
        geom in geometry(),
        kind in transform_kind(),
        seed in 0u64..1_000_000,
    ) {
        let (shape, bs) = geom;
        let settings = Settings::new(bs).unwrap().with_transform(kind);
        let a = random_array(shape, seed);
        assert_fused_matches_staged::<f32, i16>(&a, &settings, "f32/i16");
    }

    /// Same equivalence under a pruning mask (non-full kept set exercises
    /// the indirected binning/unbinning paths).
    #[test]
    fn fused_equals_staged_with_pruning(
        rows in 2usize..24,
        cols in 2usize..24,
        kept in 1usize..16,
        seed in 0u64..1_000_000,
    ) {
        let mask = PruningMask::keep_lowest_frequencies(&[4, 4], kept).unwrap();
        let settings = Settings::new(vec![4, 4]).unwrap().with_mask(mask).unwrap();
        let a = random_array(vec![rows, cols], seed);
        assert_fused_matches_staged::<f32, i16>(&a, &settings, "pruned f32/i16");
    }

    /// Other precision/index pairings take the same fused code path; spot
    /// them with a narrower case budget.
    #[test]
    fn fused_equals_staged_other_types(
        geom in geometry(),
        seed in 0u64..1_000_000,
    ) {
        let (shape, bs) = geom;
        let settings = Settings::new(bs).unwrap();
        let a = random_array(shape, seed);
        assert_fused_matches_staged::<f64, i8>(&a, &settings, "f64/i8");
        assert_fused_matches_staged::<blazr::F16, i32>(&a, &settings, "f16/i32");
    }
}

#[test]
fn fused_equals_staged_zero_and_constant_arrays() {
    // All-zero blocks hit the N == 0 fast path; constant blocks confine
    // energy to the DC coefficient.
    let settings = Settings::new(vec![4, 4]).unwrap();
    let zero = NdArray::<f64>::zeros(vec![9, 7]);
    assert_fused_matches_staged::<f32, i16>(&zero, &settings, "zeros");
    let constant = NdArray::full(vec![9, 7], 3.25f64);
    assert_fused_matches_staged::<f32, i16>(&constant, &settings, "constant");
}

#[test]
fn fused_equals_staged_scalar_array() {
    let settings = Settings::new(vec![]).unwrap();
    let a = NdArray::from_vec(vec![], vec![0.375f64]);
    assert_fused_matches_staged::<f32, i16>(&a, &settings, "scalar");
}

#[test]
fn decompress_values_matches_staged_merge_in_working_precision() {
    // `decompress_values` exposes the fused path's P-precision output; it
    // must equal the staged merge before the final f64 conversion.
    let settings = Settings::new(vec![8, 8]).unwrap();
    let a = random_array(vec![30, 22], 11);
    let c = compress::<f32, i16>(&a, &settings).unwrap();
    let mut blocked = c.specified_coefficients();
    let bt = BlockTransform::<f32>::new(settings.transform, &settings.block_shape);
    let mut scratch = vec![0.0f32; bt.block_len()];
    for kb in 0..blocked.block_count() {
        bt.inverse(blocked.block_mut(kb), &mut scratch);
    }
    let merged: NdArray<f32> = blocked.merge(c.shape());
    for threads in [1usize, 2, 4, 8] {
        let fused = with_threads(threads, || c.decompress_values());
        let fused_bits: Vec<u32> = fused.as_slice().iter().map(|x| x.to_bits()).collect();
        let ref_bits: Vec<u32> = merged.as_slice().iter().map(|x| x.to_bits()).collect();
        assert_eq!(fused_bits, ref_bits, "threads {threads}");
    }
}
