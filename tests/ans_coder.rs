//! The entropy-coded (rANS) serialization path must be lossless and
//! deterministic: for any geometry, transform, mask, and data, the
//! rANS stream decodes to exactly the array the fixed-width stream
//! decodes to, and the serialized bytes are bit-identical at 1, 2, 4,
//! and 8 threads (per-piece sub-streams are encoded independently and
//! spliced in piece order). Corrupt streams must error, never panic.

use blazr::{compress, Coder, CompressedArray, PruningMask, Settings, TransformKind};
use blazr_tensor::NdArray;
use blazr_util::rng::Xoshiro256pp;
use proptest::prelude::*;

/// Runs `op` under an explicitly sized thread pool.
fn with_threads<R>(n: usize, op: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        .unwrap()
        .install(op)
}

fn random_array(shape: Vec<usize>, seed: u64) -> NdArray<f64> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    NdArray::from_fn(shape, |_| rng.uniform_in(-1.0, 1.0))
}

/// A smooth field (skewed bin histogram — the regime rANS wins in).
fn smooth_array(shape: Vec<usize>, seed: u64) -> NdArray<f64> {
    let phase = seed as f64 * 0.01;
    NdArray::from_fn(shape, |ix| {
        ix.iter()
            .enumerate()
            .map(|(d, &i)| (i as f64 * 0.05 * (d + 1) as f64 + phase).sin())
            .sum::<f64>()
    })
}

/// Strategy: (shape, block shape) covering block-multiple and padded-tail
/// geometries in 1-D, 2-D, and 3-D.
fn geometry() -> impl Strategy<Value = (Vec<usize>, Vec<usize>)> {
    prop_oneof![
        (1usize..8).prop_map(|m| (vec![m * 8], vec![8])),
        (2usize..40).prop_map(|len| (vec![len], vec![8])),
        (2usize..20, 2usize..20).prop_map(|(r, c)| (vec![r, c], vec![4, 4])),
        (1usize..6, 1usize..7, 1usize..10).prop_map(|(x, y, z)| (vec![x, y, z], vec![2, 4, 4])),
    ]
}

fn transform_kind() -> impl Strategy<Value = TransformKind> {
    prop_oneof![
        Just(TransformKind::Dct),
        Just(TransformKind::Haar),
        Just(TransformKind::Identity),
        Just(TransformKind::WalshHadamard),
    ]
}

/// Asserts the full coder contract for one compressed array: both coders
/// and the v1 layout round-trip to the same array, and every layout's
/// bytes are identical at 1/2/4/8 threads.
fn assert_coder_contract<P, I>(c: &CompressedArray<P, I>, label: &str)
where
    P: blazr::StorableReal,
    I: blazr::BinIndex,
{
    let fixed = with_threads(1, || c.to_bytes_with(Coder::FixedWidth));
    let rans = with_threads(1, || c.to_bytes_with(Coder::Rans));
    let v1 = with_threads(1, || c.to_bytes_v1());
    for threads in [1usize, 2, 4, 8] {
        let (f, r, v) = with_threads(threads, || {
            (
                c.to_bytes_with(Coder::FixedWidth),
                c.to_bytes_with(Coder::Rans),
                c.to_bytes_v1(),
            )
        });
        assert_eq!(
            f, fixed,
            "{label}: fixed bytes diverged at {threads} threads"
        );
        assert_eq!(r, rans, "{label}: rans bytes diverged at {threads} threads");
        assert_eq!(v, v1, "{label}: v1 bytes diverged at {threads} threads");
        let (bf, br, bv) = with_threads(threads, || {
            (
                CompressedArray::<P, I>::from_bytes(&fixed).unwrap(),
                CompressedArray::<P, I>::from_bytes(&rans).unwrap(),
                CompressedArray::<P, I>::from_bytes_v1(&v1).unwrap(),
            )
        });
        assert_eq!(
            &bf, c,
            "{label}: fixed decode diverged at {threads} threads"
        );
        assert_eq!(&br, c, "{label}: rans decode diverged at {threads} threads");
        assert_eq!(&bv, c, "{label}: v1 decode diverged at {threads} threads");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Round-trip bit-equality between the rANS and fixed-width layouts
    /// over arbitrary geometry, transform, and data, at 1/2/4/8 threads.
    #[test]
    fn coders_agree_f32_i16(
        geom in geometry(),
        kind in transform_kind(),
        seed in 0u64..1_000_000,
    ) {
        let (shape, bs) = geom;
        let settings = Settings::new(bs).unwrap().with_transform(kind);
        let c = compress::<f32, i16>(&random_array(shape, seed), &settings).unwrap();
        assert_coder_contract(&c, "f32/i16");
    }

    /// Same contract on smooth (histogram-skewed) data, where the rANS
    /// path does real work, under a pruning mask.
    #[test]
    fn coders_agree_on_smooth_pruned_data(
        rows in 2usize..24,
        cols in 2usize..24,
        keep in 1usize..16,
        seed in 0u64..1_000_000,
    ) {
        let mask = PruningMask::keep_lowest_frequencies(&[4, 4], keep).unwrap();
        let settings = Settings::new(vec![4, 4]).unwrap().with_mask(mask).unwrap();
        let c = compress::<f32, i8>(&smooth_array(vec![rows, cols], seed), &settings).unwrap();
        assert_coder_contract(&c, "f32/i8 pruned");
    }

    /// Truncating a rANS stream anywhere yields an error, never a panic.
    #[test]
    fn truncated_rans_streams_error(
        cut_frac in 0.0f64..1.0,
        seed in 0u64..1_000_000,
    ) {
        let c = compress::<f32, i16>(
            &smooth_array(vec![24, 24], seed),
            &Settings::new(vec![4, 4]).unwrap(),
        ).unwrap();
        let bytes = c.to_bytes_with(Coder::Rans);
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(CompressedArray::<f32, i16>::from_bytes(&bytes[..cut]).is_err());
    }
}

#[test]
fn forced_rans_roundtrips_at_every_index_width() {
    let a = smooth_array(vec![20, 20], 3);
    let s = Settings::new(vec![4, 4]).unwrap();
    macro_rules! case {
        ($i:ty) => {{
            let c = compress::<f32, $i>(&a, &s).unwrap();
            assert_coder_contract(&c, stringify!($i));
        }};
    }
    case!(i8);
    case!(i16);
    case!(i32);
    case!(i64);
}

#[test]
fn auto_choice_is_deterministic_across_threads() {
    let smooth = compress::<f32, i16>(
        &smooth_array(vec![64, 64], 7),
        &Settings::new(vec![8, 8]).unwrap(),
    )
    .unwrap();
    let choices: Vec<Coder> = [1usize, 2, 4, 8]
        .iter()
        .map(|&n| with_threads(n, || smooth.choose_coder()))
        .collect();
    assert!(choices.windows(2).all(|w| w[0] == w[1]), "{choices:?}");
    // And the automatic serialization is byte-identical across threads.
    let reference = with_threads(1, || smooth.to_bytes());
    for n in [2usize, 4, 8] {
        assert_eq!(with_threads(n, || smooth.to_bytes()), reference);
    }
}

#[test]
fn bit_flip_sweep_never_panics_at_stream_level() {
    let c = compress::<f32, i16>(
        &smooth_array(vec![16, 16], 11),
        &Settings::new(vec![4, 4]).unwrap(),
    )
    .unwrap();
    let bytes = c.to_bytes_with(Coder::Rans);
    for byte in 0..bytes.len() {
        for bit in 0..8 {
            let mut bad = bytes.clone();
            bad[byte] ^= 1 << bit;
            // Ok (the flip hit a raw escape/biggest bit and produced a
            // different valid array) or Err — never a panic or over-read.
            let _ = CompressedArray::<f32, i16>::from_bytes(&bad);
        }
    }
}

#[test]
fn padded_tails_roundtrip_under_rans() {
    // Non-multiple extents exercise zero-padded tail blocks, whose bin
    // indices skew the histogram further.
    for shape in [vec![7usize], vec![9, 13], vec![3, 5, 7]] {
        let bs = vec![4usize; shape.len()];
        let c = compress::<f64, i16>(&smooth_array(shape.clone(), 5), &Settings::new(bs).unwrap())
            .unwrap();
        let back = CompressedArray::<f64, i16>::from_bytes(&c.to_bytes_with(Coder::Rans)).unwrap();
        assert_eq!(back, c, "shape {shape:?}");
    }
}
