//! Integration: the paper's differentiability claim (§IV, Table I
//! discussion) — "All of the operations, except the approximate
//! Wasserstein distance, are differentiable."
//!
//! PyBlaz inherits this from PyTorch autograd; here it falls out of the
//! codec's genericity: compressing a [`blazr::Dual`]-valued array
//! propagates a forward-mode directional derivative through the transform,
//! the per-block scales, and every compressed-space operation. Binning
//! (integer rounding) is treated straight-through, exactly as autograd
//! treats `round()`.
//!
//! Each test checks an analytic dual derivative against central finite
//! differences of the *whole compressed pipeline* evaluated in plain f64.

use blazr::{compress, compress_values, CompressedArray, Dual, Settings};
use blazr_tensor::NdArray;
use blazr_util::rng::Xoshiro256pp;

/// Base array plus perturbation direction.
fn setup(seed: u64) -> (NdArray<f64>, NdArray<f64>) {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let a = NdArray::from_fn(vec![16, 16], |_| rng.uniform_in(0.5, 1.5));
    let dir = NdArray::from_fn(vec![16, 16], |_| rng.uniform_in(-1.0, 1.0));
    (a, dir)
}

fn dual_array(a: &NdArray<f64>, dir: &NdArray<f64>) -> NdArray<Dual> {
    a.zip_map(dir, Dual::with_deriv)
}

/// Evaluates `f(compressed(a + t·dir))` at ±h for central differences.
fn central_diff(
    a: &NdArray<f64>,
    dir: &NdArray<f64>,
    h: f64,
    f: impl Fn(&CompressedArray<f64, i16>) -> f64,
) -> f64 {
    let s = Settings::new(vec![4, 4]).unwrap();
    let plus = a.zip_map(dir, |x, d| x + h * d);
    let minus = a.zip_map(dir, |x, d| x - h * d);
    let cp = compress::<f64, i16>(&plus, &s).unwrap();
    let cm = compress::<f64, i16>(&minus, &s).unwrap();
    (f(&cp) - f(&cm)) / (2.0 * h)
}

/// Because binning is a step function, finite differences across a bin
/// boundary are noisy; we accept agreement within a tolerance that covers
/// the quantization granularity of int16 binning on O(1) data.
const TOL: f64 = 2e-2;

#[test]
fn mean_gradient_matches_finite_differences() {
    let (a, dir) = setup(1);
    let s = Settings::new(vec![4, 4]).unwrap();
    let cd = compress_values::<Dual, i16>(&dual_array(&a, &dir), &s).unwrap();
    let analytic = cd.mean().unwrap().deriv;
    let fd = central_diff(&a, &dir, 1e-4, |c| c.mean().unwrap());
    assert!((analytic - fd).abs() < TOL, "dual {analytic} vs fd {fd}");
    // The true derivative of the mean in direction `dir` is mean(dir).
    let exact = blazr_tensor::reduce::mean(&dir);
    assert!(
        (analytic - exact).abs() < TOL,
        "dual {analytic} vs exact {exact}"
    );
}

#[test]
fn l2_norm_gradient_matches_finite_differences() {
    let (a, dir) = setup(2);
    let s = Settings::new(vec![4, 4]).unwrap();
    let cd = compress_values::<Dual, i16>(&dual_array(&a, &dir), &s).unwrap();
    let analytic = cd.l2_norm().deriv;
    let fd = central_diff(&a, &dir, 1e-4, |c| c.l2_norm());
    // d‖A‖/dt = ⟨A, dir⟩ / ‖A‖.
    let exact = blazr_tensor::reduce::dot(&a, &dir) / blazr_tensor::reduce::norm_l2(&a);
    assert!(
        (analytic - fd).abs() < TOL * 10.0,
        "dual {analytic} vs fd {fd}"
    );
    assert!(
        (analytic - exact).abs() < TOL * 10.0,
        "dual {analytic} vs exact {exact}"
    );
}

#[test]
fn variance_gradient_matches_analytic() {
    let (a, dir) = setup(3);
    let s = Settings::new(vec![4, 4]).unwrap();
    let cd = compress_values::<Dual, i16>(&dual_array(&a, &dir), &s).unwrap();
    let analytic = cd.variance().unwrap().deriv;
    // d var/dt = 2·cov(A, dir) for population variance.
    let exact = 2.0 * blazr_tensor::reduce::covariance(&a, &dir);
    assert!(
        (analytic - exact).abs() < TOL * 10.0,
        "dual {analytic} vs exact {exact}"
    );
}

#[test]
fn dot_gradient_splits_between_operands() {
    let (a, dir) = setup(4);
    let mut rng = Xoshiro256pp::seed_from_u64(99);
    let b = NdArray::from_fn(vec![16, 16], |_| rng.uniform_in(0.5, 1.5));
    let s = Settings::new(vec![4, 4]).unwrap();
    // Perturb only A.
    let ca = compress_values::<Dual, i16>(&dual_array(&a, &dir), &s).unwrap();
    let cb = compress_values::<Dual, i16>(&b.map(Dual::constant), &s).unwrap();
    let analytic = ca.dot(&cb).unwrap().deriv;
    // d⟨A,B⟩/dt = ⟨dir, B⟩. The compressed gradient is the
    // straight-through estimator: tangents flow only through the per-block
    // scales N (bin indices are integers, exactly as in PyTorch autograd),
    // so it is a *biased* estimate — good to ~15% here, like PyBlaz's.
    let exact = blazr_tensor::reduce::dot(&dir, &b);
    let scale = exact.abs().max(1.0);
    assert!(
        (analytic - exact).abs() / scale < 0.15,
        "dual {analytic} vs exact {exact}"
    );
    assert!(analytic != 0.0, "gradient must flow");
}

#[test]
fn scalar_multiplication_scales_gradients() {
    let (a, dir) = setup(5);
    let s = Settings::new(vec![4, 4]).unwrap();
    let cd = compress_values::<Dual, i16>(&dual_array(&a, &dir), &s).unwrap();
    let n0 = cd.l2_norm().deriv;
    let n3 = cd.mul_scalar(3.0).l2_norm().deriv;
    assert!(
        (n3 - 3.0 * n0).abs() < 1e-9 * n0.abs().max(1.0),
        "{n3} vs 3×{n0}"
    );
}

#[test]
fn constant_inputs_have_zero_gradients() {
    let (a, _) = setup(6);
    let s = Settings::new(vec![4, 4]).unwrap();
    let cd = compress_values::<Dual, i16>(&a.map(Dual::constant), &s).unwrap();
    assert_eq!(cd.mean().unwrap().deriv, 0.0);
    assert_eq!(cd.l2_norm().deriv, 0.0);
    assert_eq!(cd.variance().unwrap().deriv, 0.0);
}

#[test]
fn decompression_propagates_tangents() {
    // Compress a Dual field, pull out the specified coefficients, and
    // confirm the tangent of the DC coefficient equals the tangent of the
    // block sum scaled by 1/√(Πi).
    let (a, dir) = setup(7);
    let s = Settings::new(vec![4, 4]).unwrap();
    let cd = compress_values::<Dual, i16>(&dual_array(&a, &dir), &s).unwrap();
    let coeffs = cd.specified_coefficients();
    let dc = coeffs.block(0)[0];
    let mut block_dir_sum = 0.0;
    for i in 0..4 {
        for j in 0..4 {
            block_dir_sum += dir.get(&[i, j]);
        }
    }
    let exact = block_dir_sum / 4.0; // √(Πi) = 4
    assert!(
        (dc.deriv - exact).abs() < 0.05 * exact.abs().max(1.0),
        "dc tangent {} vs exact {exact}",
        dc.deriv
    );
}
