//! Integration: Table I's "source of error: none" claims.
//!
//! For every such operation, the compressed-space result must equal the
//! same operation applied to the *decompressed* arrays, to floating-point
//! precision — i.e. the operation adds no error beyond compression. For
//! "rebinning" operations, the extra error must be within one bin width.

use blazr::ops::SsimParams;
use blazr::{compress, CompressedArray, Settings};
use blazr_tensor::{reduce, NdArray};
use blazr_util::rng::Xoshiro256pp;

type Pair = (
    NdArray<f64>,
    NdArray<f64>,
    CompressedArray<f64, i16>,
    CompressedArray<f64, i16>,
);

fn setup(seed: u64) -> Pair {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let a = NdArray::from_fn(vec![40, 24], |_| rng.uniform());
    let b = NdArray::from_fn(vec![40, 24], |_| rng.uniform());
    let s = Settings::new(vec![8, 8]).unwrap();
    let ca = compress(&a, &s).unwrap();
    let cb = compress(&b, &s).unwrap();
    (a, b, ca, cb)
}

const FP: f64 = 1e-9;

#[test]
fn dot_is_exact_wrt_compressed_data() {
    let (_, _, ca, cb) = setup(1);
    let da = ca.decompress();
    let db = cb.decompress();
    assert!((ca.dot(&cb).unwrap() - reduce::dot(&da, &db)).abs() < FP);
}

#[test]
fn l2_norm_is_exact_wrt_compressed_data() {
    let (_, _, ca, _) = setup(2);
    let da = ca.decompress();
    assert!((ca.l2_norm() - reduce::norm_l2(&da)).abs() < FP);
}

#[test]
fn mean_is_exact_wrt_compressed_data() {
    let (_, _, ca, _) = setup(3);
    let da = ca.decompress();
    assert!((ca.mean().unwrap() - reduce::mean(&da)).abs() < FP);
}

#[test]
fn variance_is_exact_wrt_compressed_data() {
    let (_, _, ca, _) = setup(4);
    let da = ca.decompress();
    assert!((ca.variance().unwrap() - reduce::variance(&da)).abs() < FP);
}

#[test]
fn covariance_is_exact_wrt_compressed_data() {
    let (_, _, ca, cb) = setup(5);
    let da = ca.decompress();
    let db = cb.decompress();
    assert!((ca.covariance(&cb).unwrap() - reduce::covariance(&da, &db)).abs() < FP);
}

#[test]
fn cosine_similarity_is_exact_wrt_compressed_data() {
    let (_, _, ca, cb) = setup(6);
    let da = ca.decompress();
    let db = cb.decompress();
    assert!((ca.cosine_similarity(&cb).unwrap() - reduce::cosine_similarity(&da, &db)).abs() < FP);
}

#[test]
fn ssim_is_exact_wrt_compressed_data() {
    let (_, _, ca, cb) = setup(7);
    let da = ca.decompress();
    let db = cb.decompress();
    let p = SsimParams::default();
    assert!((ca.ssim(&cb, &p).unwrap() - reduce::ssim(&da, &db, &p)).abs() < FP);
}

#[test]
fn negation_and_scalar_multiplication_are_exact() {
    let (_, _, ca, _) = setup(8);
    let da = ca.decompress();
    assert_eq!(ca.negate().decompress().as_slice(), da.neg().as_slice());
    let lhs = ca.mul_scalar(2.5).decompress();
    let rhs = da.mul_scalar(2.5);
    for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
        assert!((x - y).abs() < FP);
    }
}

#[test]
fn addition_error_is_within_rebinning_budget() {
    let (_, _, ca, cb) = setup(9);
    let da = ca.decompress();
    let db = cb.decompress();
    let sum = ca.add(&cb).unwrap();
    // Rebinning error per coefficient ≤ new N/(2r); after the inverse
    // transform, per element ≤ Σ|Δc| ≤ kept · N/(2r). Use a conservative
    // multiple of the bin width times √(block_len).
    let max_n = sum.biggest().iter().map(|n| n.abs()).fold(0.0f64, f64::max);
    let budget = max_n / (2.0 * 32767.0) * 64.0;
    let err = blazr_util::stats::max_abs_diff(sum.decompress().as_slice(), da.add(&db).as_slice());
    assert!(err <= budget, "err {err} > budget {budget}");
}

#[test]
fn scalar_addition_matches_mean_shift() {
    let (_, _, ca, _) = setup(10);
    let shifted = ca.add_scalar(1.25).unwrap();
    let m0 = ca.mean().unwrap();
    let m1 = shifted.mean().unwrap();
    assert!((m1 - m0 - 1.25).abs() < 1e-3, "shift {}", m1 - m0);
}

#[test]
fn operation_algebra_composes() {
    // (2a − b) compressed vs decompressed, composed entirely in
    // compressed space.
    let (_, _, ca, cb) = setup(11);
    let da = ca.decompress();
    let db = cb.decompress();
    let composed = ca.mul_scalar(2.0).sub(&cb).unwrap();
    let reference = da.mul_scalar(2.0).sub(&db);
    let err = blazr_util::stats::rms_diff(composed.decompress().as_slice(), reference.as_slice());
    assert!(err < 1e-3, "rms {err}");
}

#[test]
fn block_means_and_variances_are_consistent_with_decompressed() {
    let (_, _, ca, _) = setup(12);
    let da = ca.decompress();
    let bm = ca.block_means().unwrap();
    let bv = ca.block_variances().unwrap();
    // Check the first block against the decompressed content.
    let mut vals = Vec::new();
    for i in 0..8 {
        for j in 0..8 {
            vals.push(da.get(&[i, j]));
        }
    }
    let m: f64 = vals.iter().sum::<f64>() / 64.0;
    let v: f64 = vals.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / 64.0;
    assert!((bm[0] - m).abs() < 1e-9, "{} vs {m}", bm[0]);
    assert!((bv[0] - v).abs() < 1e-9, "{} vs {v}", bv[0]);
}

#[test]
fn wasserstein_against_block_mean_reference() {
    // The approximation contract: the compressed-space Wasserstein equals
    // the exact 1-D Wasserstein on the *block means* of the decompressed
    // arrays.
    let (_, _, ca, cb) = setup(13);
    let got = ca.wasserstein(&cb, 3.0).unwrap();
    let bma = ca.block_means().unwrap();
    let bmb = cb.block_means().unwrap();
    let expect = reduce::wasserstein_1d(&bma, &bmb, 3.0);
    assert!((got - expect).abs() < 1e-12);
}
