//! Integration: quantitative and qualitative claims from the paper,
//! asserted end-to-end. Each test names the section it reproduces.

use blazr::dynamic::compress_dyn;
use blazr::{compress, Coder, CompressedArray, IndexType, PruningMask, ScalarType, Settings};
use blazr_datasets::fission::{series, FissionConfig, SCISSION_BETWEEN};
use blazr_datasets::mri::MriDataset;
use blazr_tensor::{reduce, NdArray};
use blazr_util::rng::Xoshiro256pp;

/// §IV-C: compression ratio ≈ 2.91 for shape (3,224,224), blocks (4,4,4),
/// FP32 scales, int16 indices, no pruning — against real serialized bytes.
/// The paper's formula describes the fixed-width layout, so that coder is
/// pinned here; the default rANS coder only ever produces fewer bytes.
#[test]
fn ratio_example_291() {
    let a = NdArray::<f64>::zeros(vec![3, 224, 224]);
    let c = compress::<f32, i16>(&a, &Settings::new(vec![4, 4, 4]).unwrap()).unwrap();
    let fixed = c.to_bytes_with(Coder::FixedWidth);
    let ratio = (a.len() * 8) as f64 / fixed.len() as f64;
    assert!((ratio - 2.91).abs() < 0.01, "ratio {ratio}");
    assert!(
        c.to_bytes().len() <= fixed.len(),
        "auto coder must not lose"
    );
}

/// §IV-C: ratio ≈ 10.66 with int8 and half the indices pruned.
#[test]
fn ratio_example_1066() {
    let a = NdArray::<f64>::zeros(vec![3, 224, 224]);
    let mask = PruningMask::keep_lowest_frequencies(&[4, 4, 4], 32).unwrap();
    let s = Settings::new(vec![4, 4, 4])
        .unwrap()
        .with_mask(mask)
        .unwrap();
    let c = compress::<f32, i8>(&a, &s).unwrap();
    let ratio = (a.len() * 8) as f64 / c.to_bytes_with(Coder::FixedWidth).len() as f64;
    assert!((ratio - 10.66).abs() < 0.01, "ratio {ratio}");
}

/// §III: "The compression ratio depends only on compression settings and
/// is independent of data." — true of the paper's fixed-width layout; the
/// rANS coder deliberately trades this invariant for a smaller payload.
#[test]
fn ratio_is_data_independent() {
    let mut rng = Xoshiro256pp::seed_from_u64(1);
    let a = NdArray::from_fn(vec![40, 40], |_| rng.uniform());
    let b = NdArray::from_fn(vec![40, 40], |_| rng.uniform_in(-1e6, 1e6));
    let s = Settings::new(vec![8, 8]).unwrap();
    let ca = compress::<f32, i8>(&a, &s).unwrap();
    let cb = compress::<f32, i8>(&b, &s).unwrap();
    assert_eq!(
        ca.to_bytes_with(Coder::FixedWidth).len(),
        cb.to_bytes_with(Coder::FixedWidth).len()
    );
}

/// §V-B / Fig. 5: fp32 and fp64 achieve almost the same error; 16-bit
/// types are markedly worse; int16 beats int8; and among the 16-bit
/// types, f16 usually beats bf16 on unit-scale data.
#[test]
fn fig5_dtype_and_index_orderings() {
    let ds = MriDataset::small(3, 3, 48);
    let s = Settings::new(vec![4, 8, 8]).unwrap();
    // Error metric: relative variance error (variance exercises the whole
    // coefficient spectrum, so dtype effects show through; the mean is
    // dominated by padding dilution identically for every dtype).
    let mut errs = std::collections::HashMap::new();
    for ft in ScalarType::ALL {
        for it in [IndexType::I8, IndexType::I16] {
            let mut total = 0.0;
            for i in 0..ds.volumes {
                let v = ds.volume(i);
                let c = compress_dyn(&v, &s, ft, it).unwrap();
                let got = c.variance().unwrap();
                let reference = reduce::variance(&v);
                total += (got - reference).abs() / reference;
            }
            errs.insert((ft, it), total / ds.volumes as f64);
        }
    }
    let e = |ft, it| errs[&(ft, it)];
    use IndexType::*;
    use ScalarType::*;
    // fp32 ≈ fp64 where binning error dominates (int8).
    let (e32, e64) = (e(F32, I8), e(F64, I8));
    assert!(
        (e32 - e64).abs() <= 0.5 * e64.max(e32).max(1e-12),
        "{e32} vs {e64}"
    );
    // 16-bit floats are worse than 32-bit at fine binning.
    assert!(
        e(F16, I16) > e(F32, I16),
        "{} vs {}",
        e(F16, I16),
        e(F32, I16)
    );
    assert!(e(BF16, I16) > e(F32, I16));
    // bf16 (7-bit significand) is worse than f16 (10-bit) here.
    assert!(
        e(BF16, I16) > e(F16, I16),
        "{} vs {}",
        e(BF16, I16),
        e(F16, I16)
    );
    // Finer binning can't hurt the wide float types (within noise).
    assert!(e(F64, I16) <= e(F64, I8) * 1.05);
}

/// §V-B: non-hypercubic 4×16×16 blocks achieve a *higher* ratio than
/// hypercubic 8×8×8 on this anisotropic dataset (shallow first dimension
/// ⇒ padding waste for tall blocks).
#[test]
fn fig5_non_hypercubic_ratio_advantage() {
    let ds = MriDataset::small(5, 4, 64);
    let ratio_for = |block: Vec<usize>| -> f64 {
        let s = Settings::new(block).unwrap();
        (0..ds.volumes)
            .map(|i| {
                compress_dyn(&ds.volume(i), &s, ScalarType::F32, IndexType::I8)
                    .unwrap()
                    .compression_ratio()
            })
            .sum::<f64>()
            / ds.volumes as f64
    };
    let hyper = ratio_for(vec![8, 8, 8]);
    let aniso = ratio_for(vec![4, 16, 16]);
    assert!(
        aniso > hyper,
        "4×16×16 ratio {aniso} should beat 8×8×8 ratio {hyper}"
    );
}

/// §V-C / Fig. 6(a): the compressed-space L2 difference finds the
/// scission between steps 690 and 692, the compressed and uncompressed
/// curves deviate by far less than the signal, and misleading secondary
/// peaks exist.
#[test]
fn fig6a_scission_detection() {
    let data = series(&FissionConfig::default());
    let s = Settings::new(vec![16, 16, 16]).unwrap();
    let compressed: Vec<CompressedArray<f32, i16>> =
        data.iter().map(|(_, a)| compress(a, &s).unwrap()).collect();
    let mut diffs = Vec::new();
    for w in 0..data.len() - 1 {
        let unc = reduce::norm_l2(&data[w].1.sub(&data[w + 1].1));
        let comp = compressed[w].sub(&compressed[w + 1]).unwrap().l2_norm() as f64;
        diffs.push(((data[w].0, data[w + 1].0), unc, comp));
        // Compressed tracks uncompressed closely (the paper's deviation is
        // ≈1.68 against a mean norm of 618.97; ours stays within 5% per
        // pair on this synthetic series).
        assert!((unc - comp).abs() < 0.05 * unc.max(1.0), "{unc} vs {comp}");
    }
    let (peak_pair, _, _) = diffs
        .iter()
        .cloned()
        .max_by(|a, b| a.2.partial_cmp(&b.2).unwrap())
        .unwrap();
    assert_eq!(peak_pair, SCISSION_BETWEEN);
    // Misleading secondary peaks: some non-scission pair exceeds 2× the
    // calmest pair.
    let min = diffs.iter().map(|d| d.2).fold(f64::INFINITY, f64::min);
    let second = diffs
        .iter()
        .filter(|(p, _, _)| *p != SCISSION_BETWEEN)
        .map(|d| d.2)
        .fold(0.0f64, f64::max);
    assert!(second > 2.0 * min, "no noise peaks? {second} vs {min}");
}

/// §V-C / Fig. 6(b): raising the Wasserstein order suppresses the noise
/// peaks relative to the scission peak.
#[test]
fn fig6b_order_sweep_isolates_scission() {
    let data = series(&FissionConfig::default());
    let s = Settings::new(vec![16, 16, 16]).unwrap();
    let compressed: Vec<CompressedArray<f32, i16>> =
        data.iter().map(|(_, a)| compress(a, &s).unwrap()).collect();
    let separation = |p: f64| -> f64 {
        let mut scission = 0.0;
        let mut noise: f64 = 0.0;
        for w in 0..data.len() - 1 {
            let pair = (data[w].0, data[w + 1].0);
            let d = compressed[w].wasserstein(&compressed[w + 1], p).unwrap();
            if pair == SCISSION_BETWEEN {
                scission = d;
            } else if pair == (685, 686) || pair == (695, 699) {
                noise = noise.max(d);
            }
        }
        scission / noise.max(1e-300)
    };
    let s2 = separation(2.0);
    let s68 = separation(68.0);
    assert!(
        s68 > s2,
        "p=68 ({s68}) should separate better than p=2 ({s2})"
    );
    assert!(s68 > 10.0, "scission should dominate at p=68: {s68}");
}

/// §V-A / Fig. 4: the compressed-space difference of the FP16 and FP32
/// shallow-water fields correlates with the uncompressed difference map.
#[test]
fn fig4_compressed_difference_localizes_precision_error() {
    use blazr_datasets::shallow_water::{ShallowWater, SwConfig};
    let cfg = SwConfig {
        nx: 32,
        ny: 64,
        ..SwConfig::default()
    };
    let mut lo = ShallowWater::<blazr::F16>::new(cfg.clone());
    let mut hi = ShallowWater::<f32>::new(cfg);
    lo.run(300);
    hi.run(300);
    let h16 = lo.surface_height();
    let h32 = hi.surface_height();
    let diff_unc = h32.sub(&h16);
    let s = Settings::new(vec![16, 16]).unwrap();
    let c16 = compress::<f32, i8>(&h16, &s).unwrap();
    let c32 = compress::<f32, i8>(&h32, &s).unwrap();
    let diff_comp = c32.add(&c16.negate()).unwrap().decompress();
    let cos = reduce::cosine_similarity(&diff_unc, &diff_comp);
    assert!(cos > 0.5, "difference maps should correlate, cosine {cos}");
}

/// §IV-B: one-element blocks make the approximate Wasserstein exact.
#[test]
fn wasserstein_exact_at_unit_blocks() {
    let mut rng = Xoshiro256pp::seed_from_u64(9);
    let a = NdArray::from_fn(vec![16, 16], |_| rng.uniform());
    let b = NdArray::from_fn(vec![16, 16], |_| rng.uniform());
    let s = Settings::new(vec![1, 1]).unwrap();
    let ca = compress::<f64, i32>(&a, &s).unwrap();
    let cb = compress::<f64, i32>(&b, &s).unwrap();
    let got = ca.wasserstein(&cb, 2.0).unwrap();
    let exact = reduce::wasserstein_1d(a.as_slice(), b.as_slice(), 2.0);
    assert!(
        (got - exact).abs() < 1e-4 * exact.max(1e-12),
        "got {got} exact {exact}"
    );
}
