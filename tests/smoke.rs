//! Fast end-to-end smoke test: one compress, a handful of compressed-space
//! operations, and error-model checks on a 32×32 array. This is the first
//! test to read when bisecting a broken pipeline — it exercises every layer
//! (precision conversion, blocking, transform, binning, ops) in under a
//! second.
//!
//! The assertions follow the paper's error model (Table I + §IV-D):
//!
//! * negate / add / dot / mean add **no error beyond compression error**,
//!   so their compressed-space results must match the same operation on the
//!   *decompressed* arrays to floating-point precision (add: to within one
//!   rebinning budget);
//! * against the *original* arrays they must agree within bounds derived
//!   from the compression report (`linf_bound`, `total_coeff_l2`).

use blazr::{compress_with_report, Settings};
use blazr_tensor::{reduce, NdArray};
use blazr_util::rng::Xoshiro256pp;

/// Tolerance for "no error beyond compression error" claims (f64 path).
const FP: f64 = 1e-9;

#[test]
fn end_to_end_smoke_32x32() {
    let mut rng = Xoshiro256pp::seed_from_u64(2023);
    let a = NdArray::from_fn(vec![32, 32], |_| rng.uniform_in(-1.0, 1.0));
    let b = NdArray::from_fn(vec![32, 32], |_| rng.uniform_in(-1.0, 1.0));
    let settings = Settings::new(vec![8, 8]).unwrap();

    let (ca, ra) = compress_with_report::<f64, i16>(&a, &settings).unwrap();
    let (cb, rb) = compress_with_report::<f64, i16>(&b, &settings).unwrap();
    let da = ca.decompress();
    let db = cb.decompress();

    // Compression itself respects the reported error model.
    assert_eq!(da.shape(), &[32, 32]);
    let linf_a = blazr_util::stats::max_abs_diff(a.as_slice(), da.as_slice());
    assert!(
        linf_a <= ra.linf_bound() * (1.0 + 1e-9),
        "compression L∞ {linf_a} exceeds reported bound {}",
        ra.linf_bound()
    );

    // Negation: exact involution, and exact vs the decompressed reference.
    let neg = ca.negate();
    assert_eq!(neg.negate(), ca, "negation must be an exact involution");
    let dneg = neg.decompress();
    for (x, y) in dneg.as_slice().iter().zip(da.as_slice()) {
        assert_eq!(*x, -*y, "negate must be bit-exact in compressed space");
    }

    // Addition: matches decompressed reference within one rebinning budget.
    let sum = ca.add(&cb).unwrap();
    let dsum = sum.decompress();
    let reference = da.add(&db);
    let max_n = sum.biggest().iter().map(|n| n.abs()).fold(0.0f64, f64::max);
    // Rebinned coefficients each move < half a bin (N/(2r)); after the
    // orthonormal inverse transform the per-element error is bounded by
    // the coefficient-error L1, ≤ block_len · N/(2r).
    let rebin_budget = max_n / (2.0 * 32767.0) * 64.0;
    let add_err = blazr_util::stats::max_abs_diff(dsum.as_slice(), reference.as_slice());
    assert!(
        add_err <= rebin_budget,
        "add error {add_err} exceeds rebinning budget {rebin_budget}"
    );
    // And against the original arrays: compression errors of both inputs
    // plus the rebinning budget.
    let vs_original = blazr_util::stats::max_abs_diff(dsum.as_slice(), a.add(&b).as_slice());
    let budget = ra.linf_bound() + rb.linf_bound() + rebin_budget;
    assert!(
        vs_original <= budget * (1.0 + 1e-9),
        "add-vs-original error {vs_original} exceeds {budget}"
    );

    // Dot product: exact vs decompressed (orthonormal transform preserves
    // inner products); near the original within a Cauchy–Schwarz bound
    // assembled from the reported coefficient-space L2 errors.
    let dot = ca.dot(&cb).unwrap();
    let dot_ref = reduce::dot(&da, &db);
    assert!(
        (dot - dot_ref).abs() <= FP * dot_ref.abs().max(1.0),
        "dot {dot} vs decompressed reference {dot_ref}"
    );
    let dot_orig = reduce::dot(&a, &b);
    let cs_bound =
        reduce::norm_l2(&a) * rb.total_coeff_l2 + reduce::norm_l2(&db) * ra.total_coeff_l2;
    assert!(
        (dot - dot_orig).abs() <= cs_bound * (1.0 + 1e-9) + 1e-12,
        "dot {dot} vs original {dot_orig}: error exceeds Cauchy–Schwarz bound {cs_bound}"
    );

    // Mean: exact vs decompressed; within the mean absolute error bound
    // vs the original.
    let mean = ca.mean().unwrap();
    let mean_ref = reduce::mean(&da);
    assert!(
        (mean - mean_ref).abs() <= FP,
        "mean {mean} vs decompressed reference {mean_ref}"
    );
    let mean_orig = reduce::mean(&a);
    assert!(
        (mean - mean_orig).abs() <= ra.linf_bound() * (1.0 + 1e-9),
        "mean {mean} vs original {mean_orig} beyond L∞ bound {}",
        ra.linf_bound()
    );

    // Serialization closes the loop: the operated-on array round-trips.
    let back = blazr::CompressedArray::<f64, i16>::from_bytes(&sum.to_bytes()).unwrap();
    assert_eq!(
        back, sum,
        "serialized compressed sum must round-trip exactly"
    );
}
