//! Integration: compress→decompress roundtrips across dimensionalities,
//! block shapes, transforms, masks, and type parameters.

use blazr::{compress, PruningMask, Settings, TransformKind, BF16, F16};
use blazr_tensor::NdArray;
use blazr_util::rng::Xoshiro256pp;
use blazr_util::stats::{max_abs_diff, rms_diff};

fn random(shape: &[usize], seed: u64) -> NdArray<f64> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    NdArray::from_fn(shape.to_vec(), |_| rng.uniform_in(-1.0, 1.0))
}

#[test]
fn one_through_four_dimensions() {
    for (shape, block) in [
        (vec![1000], vec![8]),
        (vec![100, 100], vec![8, 8]),
        (vec![20, 30, 40], vec![4, 4, 4]),
        (vec![6, 10, 12, 8], vec![2, 4, 4, 4]),
    ] {
        let a = random(&shape, 1);
        let c = compress::<f64, i16>(&a, &Settings::new(block).unwrap()).unwrap();
        let d = c.decompress();
        assert_eq!(d.shape(), a.shape());
        let err = max_abs_diff(a.as_slice(), d.as_slice());
        assert!(err < 5e-3, "shape {shape:?}: err {err}");
    }
}

#[test]
fn haar_transform_roundtrips() {
    let a = random(&[64, 64], 2);
    let s = Settings::new(vec![8, 8])
        .unwrap()
        .with_transform(TransformKind::Haar);
    let c = compress::<f64, i16>(&a, &s).unwrap();
    let err = max_abs_diff(a.as_slice(), c.decompress().as_slice());
    assert!(err < 5e-3, "err {err}");
}

#[test]
fn identity_transform_roundtrips() {
    let a = random(&[32, 32], 3);
    let s = Settings::new(vec![4, 4])
        .unwrap()
        .with_transform(TransformKind::Identity);
    let c = compress::<f64, i16>(&a, &s).unwrap();
    let err = max_abs_diff(a.as_slice(), c.decompress().as_slice());
    assert!(err < 5e-3, "err {err}");
}

#[test]
fn all_sixteen_type_combinations_roundtrip() {
    use blazr::dynamic::compress_dyn;
    use blazr::{IndexType, ScalarType};
    let a = random(&[24, 24], 4).map(|x| x * 0.5 + 0.5); // [0,1]
    let s = Settings::new(vec![8, 8]).unwrap();
    for ft in ScalarType::ALL {
        for it in IndexType::ALL {
            let c = compress_dyn(&a, &s, ft, it).unwrap();
            let d = c.decompress();
            let err = rms_diff(a.as_slice(), d.as_slice());
            let tolerance = match ft {
                ScalarType::BF16 => 0.05,
                ScalarType::F16 => 0.02,
                _ => 0.01,
            };
            assert!(err < tolerance, "{ft}/{it}: rms {err}");
        }
    }
}

#[test]
fn non_hypercubic_blocks_roundtrip() {
    let a = random(&[36, 100, 100], 5);
    for block in [vec![4, 8, 8], vec![4, 16, 16], vec![8, 16, 16]] {
        let c = compress::<f32, i16>(&a, &Settings::new(block.clone()).unwrap()).unwrap();
        let d = c.decompress();
        let err = rms_diff(a.as_slice(), d.as_slice());
        assert!(err < 2e-3, "block {block:?}: rms {err}");
    }
}

#[test]
fn pruning_trades_error_for_ratio_monotonically() {
    let a = random(&[64, 64], 6);
    let mut last_err = 0.0f64;
    let mut last_ratio = 0.0f64;
    for kept in [64usize, 32, 16, 8, 4] {
        let mask = PruningMask::keep_lowest_frequencies(&[8, 8], kept).unwrap();
        let s = Settings::new(vec![8, 8]).unwrap().with_mask(mask).unwrap();
        let c = compress::<f64, i16>(&a, &s).unwrap();
        let err = rms_diff(a.as_slice(), c.decompress().as_slice());
        let ratio = c.compression_ratio();
        assert!(
            err >= last_err,
            "error should grow as pruning deepens: {err} < {last_err} (kept {kept})"
        );
        assert!(
            ratio > last_ratio,
            "ratio should grow as pruning deepens: {ratio} <= {last_ratio} (kept {kept})"
        );
        last_err = err;
        last_ratio = ratio;
    }
}

#[test]
fn pruning_favors_smooth_data_over_noise() {
    // Unlike entropy-coded compressors, PyBlaz's *binning* error depends on
    // each block's peak-to-typical coefficient ratio, not on
    // compressibility — so unpruned smooth and noisy data land at similar
    // error. The smoothness advantage appears under *pruning*: dropping
    // high frequencies barely hurts smooth data and devastates noise.
    let smooth = NdArray::from_fn(vec![64, 64], |i| {
        ((i[0] as f64) / 20.0).sin() + ((i[1] as f64) / 15.0).cos()
    });
    let noise = random(&[64, 64], 7);
    let mask = PruningMask::keep_low_frequency_box(&[8, 8], &[4, 4]).unwrap();
    let s = Settings::new(vec![8, 8]).unwrap().with_mask(mask).unwrap();
    let es = rms_diff(
        smooth.as_slice(),
        compress::<f64, i16>(&smooth, &s)
            .unwrap()
            .decompress()
            .as_slice(),
    ) / blazr_tensor::reduce::std_dev(&smooth);
    let en = rms_diff(
        noise.as_slice(),
        compress::<f64, i16>(&noise, &s)
            .unwrap()
            .decompress()
            .as_slice(),
    ) / blazr_tensor::reduce::std_dev(&noise);
    assert!(
        es * 5.0 < en,
        "pruned smooth {es} should be ≫ better than pruned noise {en}"
    );
}

#[test]
fn half_precision_types_roundtrip_reasonably() {
    let a = random(&[32, 32], 8).map(|x| x * 0.5 + 0.5);
    let s = Settings::new(vec![8, 8]).unwrap();
    let e16 = rms_diff(
        a.as_slice(),
        compress::<F16, i16>(&a, &s)
            .unwrap()
            .decompress()
            .as_slice(),
    );
    let ebf = rms_diff(
        a.as_slice(),
        compress::<BF16, i16>(&a, &s)
            .unwrap()
            .decompress()
            .as_slice(),
    );
    // Fig. 5 ordering: f16 < bf16 error on unit-scale data.
    assert!(e16 < ebf, "f16 {e16} vs bf16 {ebf}");
    assert!(ebf < 0.1, "bf16 should still be usable: {ebf}");
}
