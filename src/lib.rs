//! Root integration package for the blazr workspace. See README.md.
#![forbid(unsafe_code)]
pub use blazr as core;
